package geom

import (
	"testing"
	"testing/quick"
)

func TestRectCanon(t *testing.T) {
	r := R(10, 20, 5, 2)
	if r.X0 != 5 || r.Y0 != 2 || r.X1 != 10 || r.Y1 != 20 {
		t.Fatalf("canon failed: %v", r)
	}
	if r.W() != 5 || r.H() != 18 {
		t.Fatalf("W/H wrong: %d %d", r.W(), r.H())
	}
	if r.Area() != 90 {
		t.Fatalf("area = %d", r.Area())
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Fatal("zero rect should be empty")
	}
	if R(0, 0, 0, 5).Empty() == false {
		t.Fatal("zero-width rect should be empty")
	}
	if R(0, 0, 1, 1).Empty() {
		t.Fatal("unit rect should not be empty")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 20, 8)
	u := a.Union(b)
	if u != R(0, 0, 20, 10) {
		t.Fatalf("union = %v", u)
	}
	i := a.Intersect(b)
	if i != R(5, 5, 10, 8) {
		t.Fatalf("intersect = %v", i)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlap expected")
	}
	c := R(11, 0, 12, 1)
	if a.Overlaps(c) {
		t.Fatal("no overlap expected")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
	// Union with empty is identity.
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Fatal("union with empty should be identity")
	}
}

func TestSeparation(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want int
	}{
		{R(12, 0, 20, 10), 2},  // pure x gap
		{R(0, 15, 10, 20), 5},  // pure y gap
		{R(13, 14, 20, 20), 4}, // diagonal: max(3,4)
		{R(10, 0, 20, 10), 0},  // touching
		{R(5, 5, 6, 6), 0},     // contained
	}
	for _, c := range cases {
		if got := a.Separation(c.b); got != c.want {
			t.Errorf("sep(%v,%v) = %d, want %d", a, c.b, got, c.want)
		}
		if got := c.b.Separation(a); got != c.want {
			t.Errorf("sep symmetric (%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestContainsInset(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.Contains(R(2, 2, 8, 8)) {
		t.Fatal("contains failed")
	}
	if a.Contains(R(2, 2, 12, 8)) {
		t.Fatal("contains false positive")
	}
	if a.Inset(2) != R(2, 2, 8, 8) {
		t.Fatalf("inset = %v", a.Inset(2))
	}
	if a.Expand(3) != R(-3, -3, 13, 13) {
		t.Fatalf("expand = %v", a.Expand(3))
	}
}

func TestOrientGroup(t *testing.T) {
	// The eight orientations must be distinct as point actions.
	seen := map[[4]int]Orient{}
	for _, o := range AllOrients {
		ex := TransformPoint(Point{1, 0}, o)
		ey := TransformPoint(Point{0, 1}, o)
		key := [4]int{ex.X, ex.Y, ey.X, ey.Y}
		if prev, dup := seen[key]; dup {
			t.Fatalf("orientations %v and %v coincide", prev, o)
		}
		seen[key] = o
	}
	// Composition with inverse is identity on arbitrary points.
	p := Point{7, -3}
	for _, o := range AllOrients {
		inv := Invert(o)
		if got := TransformPoint(TransformPoint(p, o), inv); got != p {
			t.Fatalf("inverse of %v failed: got %v", o, got)
		}
	}
}

func TestComposeAssociativity(t *testing.T) {
	p := Point{5, 11}
	for _, a := range AllOrients {
		for _, b := range AllOrients {
			// Compose(a,b)(p) == a(b(p))
			want := TransformPoint(TransformPoint(p, b), a)
			got := TransformPoint(p, Compose(a, b))
			if got != want {
				t.Fatalf("compose(%v,%v) mismatch: %v vs %v", a, b, got, want)
			}
		}
	}
}

func TestTransformRectCanonical(t *testing.T) {
	r := R(1, 2, 5, 9)
	for _, o := range AllOrients {
		tr := TransformRect(r, o)
		if tr.X0 > tr.X1 || tr.Y0 > tr.Y1 {
			t.Fatalf("non-canonical transform under %v: %v", o, tr)
		}
		if tr.Area() != r.Area() {
			t.Fatalf("area not preserved under %v", o)
		}
	}
}

func TestTransformDir(t *testing.T) {
	if TransformDir(North, R90) != West {
		t.Fatalf("N under R90 = %v", TransformDir(North, R90))
	}
	if TransformDir(East, R90) != North {
		t.Fatalf("E under R90 = %v", TransformDir(East, R90))
	}
	if TransformDir(North, MX) != South {
		t.Fatalf("N under MX = %v", TransformDir(North, MX))
	}
	if TransformDir(East, MY) != West {
		t.Fatalf("E under MY = %v", TransformDir(East, MY))
	}
	if TransformDir(Inner, R180) != Inner {
		t.Fatal("Inner should be invariant")
	}
	for _, d := range []PortDir{North, South, East, West} {
		if d.Opposite().Opposite() != d {
			t.Fatalf("opposite involution broken for %v", d)
		}
	}
}

func TestCellPortsAndBounds(t *testing.T) {
	c := NewCell("leaf")
	c.AddShape(1, R(0, 0, 100, 50), "vdd")
	c.AddShape(2, R(0, 60, 100, 80), "gnd")
	c.AddPort("vdd", 1, R(0, 0, 10, 50), West)
	c.AddPort("gnd", 2, R(90, 60, 100, 80), East)
	if b := c.Bounds(); b != R(0, 0, 100, 80) {
		t.Fatalf("bounds = %v", b)
	}
	p, ok := c.Port("vdd")
	if !ok || p.Dir != West {
		t.Fatalf("port lookup failed: %v %v", p, ok)
	}
	if _, ok := c.Port("nope"); ok {
		t.Fatal("phantom port")
	}
	// Replacing a port keeps count stable.
	c.AddPort("vdd", 1, R(0, 0, 5, 50), West)
	if len(c.Ports) != 2 {
		t.Fatalf("port replace duplicated: %d", len(c.Ports))
	}
	names := c.PortNames()
	if len(names) != 2 || names[0] != "gnd" || names[1] != "vdd" {
		t.Fatalf("names = %v", names)
	}
}

func TestCellAbutOverridesBounds(t *testing.T) {
	c := NewCell("x")
	c.AddShape(1, R(2, 2, 8, 8), "")
	c.Abut = R(0, 0, 10, 10)
	if c.Bounds() != R(0, 0, 10, 10) {
		t.Fatalf("abut not honoured: %v", c.Bounds())
	}
}

func TestFlattenHierarchy(t *testing.T) {
	leaf := NewCell("leaf")
	leaf.AddShape(1, R(0, 0, 10, 10), "a")

	mid := NewCell("mid")
	mid.Place("l0", leaf, R0, Point{0, 0})
	mid.Place("l1", leaf, R0, Point{20, 0})

	top := NewCell("top")
	top.Place("m0", mid, R0, Point{0, 0})
	top.Place("m1", mid, R90, Point{100, 0})

	fl := top.Flatten()
	if len(fl) != 4 {
		t.Fatalf("flatten count = %d", len(fl))
	}
	if top.CountShapes() != 4 {
		t.Fatalf("CountShapes = %d", top.CountShapes())
	}
	// m0/l1 should be at (20,0)-(30,10).
	found := false
	for _, s := range fl {
		if s.Rect == R(20, 0, 30, 10) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing translated leaf; got %v", fl)
	}
	// Rotated instance: leaf (0,0,10,10) under R90 -> (-10,0,0,10), +100 x.
	found = false
	for _, s := range fl {
		if s.Rect == R(90, 0, 100, 10) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing rotated leaf; got %v", fl)
	}
}

func TestInstancePortRect(t *testing.T) {
	leaf := NewCell("leaf")
	leaf.AddPort("p", 3, R(0, 0, 2, 2), South)
	top := NewCell("top")
	in := top.Place("i", leaf, R0, Point{10, 10})
	r, l, ok := in.PortRect("p")
	if !ok || l != 3 || r != R(10, 10, 12, 12) {
		t.Fatalf("port rect %v layer %d ok %v", r, l, ok)
	}
	if _, _, ok := in.PortRect("absent"); ok {
		t.Fatal("phantom instance port")
	}
}

func TestDRCWidthAndSpacing(t *testing.T) {
	c := NewCell("d")
	c.AddShape(1, R(0, 0, 2, 100), "a")   // width 2: violates MinWidth 3
	c.AddShape(1, R(4, 0, 20, 100), "b")  // spacing 2 to shape a: violates 3
	c.AddShape(1, R(40, 0, 60, 100), "b") // far away, fine
	rules := map[Layer]Rule{1: {MinWidth: 3, MinSpacing: 3}}
	vs := Check(c, rules, 0)
	var widths, spacings int
	for _, v := range vs {
		switch v.Kind {
		case "width":
			widths++
		case "spacing":
			spacings++
		}
	}
	if widths != 1 || spacings != 1 {
		t.Fatalf("got %d width, %d spacing violations: %v", widths, spacings, vs)
	}
}

func TestDRCSameNetAbutmentExempt(t *testing.T) {
	c := NewCell("d")
	c.AddShape(1, R(0, 0, 10, 10), "n")
	c.AddShape(1, R(10, 0, 20, 10), "n") // abuts, same net: legal
	rules := map[Layer]Rule{1: {MinSpacing: 3}}
	if vs := Check(c, rules, 0); len(vs) != 0 {
		t.Fatalf("same-net abutment flagged: %v", vs)
	}
	// Different nets abutting is still a violation (a short).
	c2 := NewCell("d2")
	c2.AddShape(1, R(0, 0, 10, 10), "n1")
	c2.AddShape(1, R(11, 0, 20, 10), "n2") // 1 < 3 spacing
	if vs := Check(c2, rules, 0); len(vs) != 1 {
		t.Fatalf("cross-net spacing missed: %v", vs)
	}
}

func TestDRCMaxViolations(t *testing.T) {
	c := NewCell("d")
	for i := 0; i < 10; i++ {
		c.AddShape(1, R(i*100, 0, i*100+1, 10), "") // all width violations
	}
	rules := map[Layer]Rule{1: {MinWidth: 5}}
	if vs := Check(c, rules, 3); len(vs) != 3 {
		t.Fatalf("cap not honoured: %d", len(vs))
	}
}

// Property: Union is commutative, associative-ish (bounding), and
// contains both operands.
func TestQuickUnionProperties(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh int16) bool {
		a := R(int(ax0), int(ay0), int(ax0)+abs16(aw)+1, int(ay0)+abs16(ah)+1)
		b := R(int(bx0), int(by0), int(bx0)+abs16(bw)+1, int(by0)+abs16(bh)+1)
		u := a.Union(b)
		return u == b.Union(a) && u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: all orientations preserve rect area and Separation is
// orientation-invariant when both rects are transformed together.
func TestQuickTransformInvariants(t *testing.T) {
	f := func(x0, y0, w, h, bx, by, bw, bh int16, oi uint8) bool {
		o := AllOrients[int(oi)%len(AllOrients)]
		a := R(int(x0), int(y0), int(x0)+abs16(w)+1, int(y0)+abs16(h)+1)
		b := R(int(bx), int(by), int(bx)+abs16(bw)+1, int(by)+abs16(bh)+1)
		ta, tb := TransformRect(a, o), TransformRect(b, o)
		return ta.Area() == a.Area() && ta.Separation(tb) == a.Separation(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect result is contained in both operands and
// Overlaps agrees with non-empty intersection.
func TestQuickIntersectProperties(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh int16) bool {
		a := R(int(ax0), int(ay0), int(ax0)+abs16(aw)+1, int(ay0)+abs16(ah)+1)
		b := R(int(bx0), int(by0), int(bx0)+abs16(bw)+1, int(by0)+abs16(bh)+1)
		i := a.Intersect(b)
		if i.Empty() {
			return !a.Overlaps(b)
		}
		return a.Overlaps(b) && a.Contains(i) && b.Contains(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{3, 4}
	b := Point{1, 2}
	if a.Add(b) != (Point{4, 6}) || a.Sub(b) != (Point{2, 2}) {
		t.Fatal("point arithmetic wrong")
	}
	if R(0, 0, 10, 20).Center() != (Point{5, 10}) {
		t.Fatal("center wrong")
	}
}

func TestStringRenderings(t *testing.T) {
	if R(1, 2, 3, 4).String() != "(1,2)-(3,4)" {
		t.Fatalf("rect string %q", R(1, 2, 3, 4).String())
	}
	for _, o := range AllOrients {
		if o.String() == "R?" {
			t.Fatalf("unnamed orientation %+v", o)
		}
	}
	for d, want := range map[PortDir]string{North: "N", South: "S", East: "E", West: "W", Inner: "I"} {
		if d.String() != want {
			t.Fatalf("dir string %v", d)
		}
	}
	vW := Violation{Layer: 1, Kind: "width", A: R(0, 0, 1, 1), Got: 1, Want: 3}
	vS := Violation{Layer: 1, Kind: "spacing", A: R(0, 0, 1, 1), B: R(2, 0, 3, 1), Got: 1, Want: 3}
	if vW.String() == "" || vS.String() == "" {
		t.Fatal("violation strings empty")
	}
}

func TestMustPortAndAreas(t *testing.T) {
	c := NewCell("c")
	c.AddShape(1, R(0, 0, 1000, 2000), "")
	c.AddPort("p", 1, R(0, 0, 10, 10), North)
	if c.MustPort("p").Name != "p" {
		t.Fatal("MustPort lookup failed")
	}
	if c.Area() != 2_000_000 {
		t.Fatalf("area %d", c.Area())
	}
	// 1000x2000 dbu = 1x2 µm = 2 µm².
	if got := c.AreaUm2(); got < 1.999 || got > 2.001 {
		t.Fatalf("area um2 %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPort should panic on a missing port")
		}
	}()
	c.MustPort("absent")
}

func TestInstanceBoundsDirect(t *testing.T) {
	leaf := NewCell("leaf")
	leaf.AddShape(1, R(0, 0, 10, 20), "")
	top := NewCell("top")
	in := top.Place("i", leaf, R90, Point{X: 100, Y: 50})
	// R90 swaps w/h: 10x20 -> 20x10 at the translated origin.
	got := in.Bounds()
	if got.W() != 20 || got.H() != 10 {
		t.Fatalf("instance bounds %v", got)
	}
}

func abs16(v int16) int {
	if v < 0 {
		if v == -32768 {
			return 32767
		}
		return int(-v)
	}
	return int(v)
}
