// Package geom provides the geometry kernel underlying all layout
// generation in BISRAMGEN: integer points and rectangles in a fixed
// database unit (1 unit = 1 nanometre), the eight Manhattan
// orientations, hierarchical cells with instances, named ports, and a
// simplified width/spacing design-rule checker.
//
// All coordinates are integers. Layout generators work in nanometres so
// that half-lambda quantities for sub-micron processes remain exactly
// representable.
package geom

import (
	"fmt"
	"sort"

	"repro/internal/cerr"
)

// DBUPerMicron is the number of database units per micron. All layout
// code in this repository uses 1 dbu = 1 nm.
const DBUPerMicron = 1000

// Point is a location in database units.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Rect is an axis-aligned rectangle. A Rect is canonical when
// X0 <= X1 and Y0 <= Y1; Canon returns the canonical form.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a canonical Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{x0, y0, x1, y1}.Canon() }

// Canon returns r with its corners ordered so X0<=X1 and Y0<=Y1.
func (r Rect) Canon() Rect {
	if r.X0 > r.X1 {
		r.X0, r.X1 = r.X1, r.X0
	}
	if r.Y0 > r.Y1 {
		r.Y0, r.Y1 = r.Y1, r.Y0
	}
	return r
}

// W returns the width (x extent) of r.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height (y extent) of r.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the area of r in dbu².
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Center returns the midpoint of r (rounded toward -inf).
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.X0 + d.X, r.Y0 + d.Y, r.X1 + d.X, r.Y1 + d.Y}
}

// Union returns the bounding box of r and s. The union of an empty
// rect with s is s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{min(r.X0, s.X0), min(r.Y0, s.Y0), max(r.X1, s.X1), max(r.Y1, s.Y1)}
}

// Intersect returns the overlap of r and s; the result is Empty when
// they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{max(r.X0, s.X0), max(r.Y0, s.Y0), min(r.X1, s.X1), min(r.Y1, s.Y1)}
	if out.X0 > out.X1 || out.Y0 > out.Y1 {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.X0 <= s.X0 && r.Y0 <= s.Y0 && r.X1 >= s.X1 && r.Y1 >= s.Y1
}

// Inset returns r shrunk by d on every side. Insetting past the
// midline yields an empty (possibly inverted, then canonicalised) rect.
func (r Rect) Inset(d int) Rect {
	return Rect{r.X0 + d, r.Y0 + d, r.X1 - d, r.Y1 - d}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d int) Rect { return r.Inset(-d) }

// Separation returns the Manhattan gap between r and s: the larger of
// the x-gap and y-gap between their closest edges. It is 0 when the
// rectangles touch or overlap in both axes.
func (r Rect) Separation(s Rect) int {
	dx := max(max(r.X0-s.X1, s.X0-r.X1), 0)
	dy := max(max(r.Y0-s.Y1, s.Y0-r.Y1), 0)
	return max(dx, dy)
}

func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// Layer identifies a mask layer. The technology package assigns layer
// numbers; geometry code treats them as opaque identifiers.
type Layer int

// Reserved layer values used by generators that have not bound a
// technology yet. Real designs use tech.Process layer ids, which are
// compatible by construction.
const (
	LayerInvalid Layer = iota - 1
)

// Shape is a rectangle on a layer, optionally labelled with the net it
// belongs to (extraction uses the label; unlabeled shapes are wiring
// whose net is inferred).
type Shape struct {
	Layer Layer
	Rect  Rect
	Net   string
}

// PortDir describes which edge of a cell a port is expected to be
// reachable from, which the floorplanner's port-alignment heuristic
// uses.
type PortDir int

// Port edge directions.
const (
	North PortDir = iota
	South
	East
	West
	Inner // not on a boundary; reached by over-the-cell routing
)

func (d PortDir) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	default:
		return "I"
	}
}

// Opposite returns the facing direction (North<->South, East<->West).
// Inner is its own opposite.
func (d PortDir) Opposite() PortDir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Inner
}

// Port is a named connection point of a cell: a rectangle on a routing
// layer, tagged with the boundary edge it sits on.
type Port struct {
	Name  string
	Layer Layer
	Rect  Rect
	Dir   PortDir
}

// Instance places a child cell at an offset with an orientation.
type Instance struct {
	Name   string
	Cell   *Cell
	Orient Orient
	At     Point // placement of the child's transformed origin
}

// Bounds returns the placed bounding box of the instance.
func (in *Instance) Bounds() Rect {
	return TransformRect(in.Cell.Bounds(), in.Orient).Translate(in.At)
}

// PortRect returns the placed rectangle of the named child port and
// whether it exists.
func (in *Instance) PortRect(name string) (Rect, Layer, bool) {
	p, ok := in.Cell.Port(name)
	if !ok {
		return Rect{}, 0, false
	}
	return TransformRect(p.Rect, in.Orient).Translate(in.At), p.Layer, true
}

// Cell is a layout cell: local shapes, child instances, and ports.
// Leaf cells have no instances; macrocells are compositions.
type Cell struct {
	Name      string
	Shapes    []Shape
	Instances []Instance
	Ports     []Port

	// Abut is the abutment box: the area the cell logically occupies
	// for placement, which may exceed the shape bounding box (e.g. to
	// reserve spacing). Zero means "use shape bounds".
	Abut Rect

	portIdx map[string]int
	frozen  bool
}

// NewCell returns an empty cell with the given name.
func NewCell(name string) *Cell { return &Cell{Name: name} }

// Freeze marks the cell subtree immutable: any later AddShape,
// AddPort or Place panics. Freezing also pre-builds every port index,
// so Port lookups on a frozen cell are pure reads — the property that
// makes one frozen cell safe to share across concurrent compiles
// (the memoized leaf-cell library relies on it). Freeze is idempotent
// and recurses into instanced children. Like MustPort, the mutation
// panic is a documented invariant site of the cerr panic policy:
// generators run behind compile-stage Recover guards, so a violation
// surfaces to callers as a typed ErrInternal, never a crash.
func (c *Cell) Freeze() {
	if c.frozen {
		return
	}
	c.Port("") // force-build portIdx before publication
	c.frozen = true
	for i := range c.Instances {
		c.Instances[i].Cell.Freeze()
	}
}

// Frozen reports whether the cell has been frozen.
func (c *Cell) Frozen() bool { return c.frozen }

// mutcheck panics when a mutating method runs on a frozen cell.
func (c *Cell) mutcheck(op string) {
	if c.frozen {
		panic(fmt.Sprintf("geom: %s on frozen cell %q (shared library cells are immutable)", op, c.Name))
	}
}

// AddShape appends a rectangle on a layer, labelled with net (may be
// empty for anonymous wiring).
func (c *Cell) AddShape(l Layer, r Rect, net string) {
	c.mutcheck("AddShape")
	c.Shapes = append(c.Shapes, Shape{Layer: l, Rect: r.Canon(), Net: net})
}

// AddPort registers a named port. Re-adding a name replaces the
// earlier port.
func (c *Cell) AddPort(name string, l Layer, r Rect, dir PortDir) {
	c.mutcheck("AddPort")
	if c.portIdx == nil {
		c.portIdx = make(map[string]int)
	}
	p := Port{Name: name, Layer: l, Rect: r.Canon(), Dir: dir}
	if i, ok := c.portIdx[name]; ok {
		c.Ports[i] = p
		return
	}
	c.portIdx[name] = len(c.Ports)
	c.Ports = append(c.Ports, p)
}

// Port looks up a port by name.
func (c *Cell) Port(name string) (Port, bool) {
	if c.portIdx == nil {
		c.portIdx = make(map[string]int)
		for i, p := range c.Ports {
			c.portIdx[p.Name] = i
		}
	}
	i, ok := c.portIdx[name]
	if !ok {
		return Port{}, false
	}
	return c.Ports[i], true
}

// PortErr is Port with a typed error: a missing port returns
// cerr.ErrGeometry. Use it wherever the port name is not statically
// guaranteed by the caller (e.g. names derived from user input).
func (c *Cell) PortErr(name string) (Port, error) {
	p, ok := c.Port(name)
	if !ok {
		return Port{}, cerr.New(cerr.CodeGeometry, "geom: cell %q has no port %q", c.Name, name)
	}
	return p, nil
}

// MustPort is Port but panics when the port is missing; generators use
// it ONLY for ports they themselves created moments earlier, so a
// failure is a programming error in the generator. This is one of the
// documented residual panic sites of the cerr panic policy (see
// package cerr); every generator runs behind a compile-stage Recover
// guard, so even this panic surfaces to compiler callers as a typed
// ErrInternal. Code handling user-derived port names must use PortErr.
func (c *Cell) MustPort(name string) Port {
	p, ok := c.Port(name)
	if !ok {
		panic(fmt.Sprintf("geom: cell %q has no port %q", c.Name, name))
	}
	return p
}

// Place adds an instance of child at the given point with orientation o.
func (c *Cell) Place(name string, child *Cell, o Orient, at Point) *Instance {
	c.mutcheck("Place")
	c.Instances = append(c.Instances, Instance{Name: name, Cell: child, Orient: o, At: at})
	return &c.Instances[len(c.Instances)-1]
}

// Bounds returns the abutment box if set, else the union of all shape
// and instance bounding boxes.
func (c *Cell) Bounds() Rect {
	if !c.Abut.Empty() {
		return c.Abut
	}
	var b Rect
	for _, s := range c.Shapes {
		b = b.Union(s.Rect)
	}
	for i := range c.Instances {
		b = b.Union(c.Instances[i].Bounds())
	}
	return b
}

// Area returns the area of the cell bounding box in dbu².
func (c *Cell) Area() int64 { return c.Bounds().Area() }

// AreaUm2 returns the bounding-box area in µm².
func (c *Cell) AreaUm2() float64 {
	return float64(c.Area()) / (DBUPerMicron * DBUPerMicron)
}

// Flatten returns every shape in the cell subtree transformed into the
// coordinate system of c. Port shapes are not included.
func (c *Cell) Flatten() []Shape {
	var out []Shape
	c.flattenInto(&out, Orient{}, Point{})
	return out
}

func (c *Cell) flattenInto(out *[]Shape, o Orient, at Point) {
	for _, s := range c.Shapes {
		*out = append(*out, Shape{Layer: s.Layer, Rect: TransformRect(s.Rect, o).Translate(at), Net: s.Net})
	}
	for i := range c.Instances {
		in := &c.Instances[i]
		co := Compose(o, in.Orient)
		cAt := TransformPoint(in.At, o).Add(at)
		in.Cell.flattenInto(out, co, cAt)
	}
}

// CountShapes returns the total number of flattened shapes without
// materialising them (used for statistics on big arrays).
func (c *Cell) CountShapes() int64 {
	n := int64(len(c.Shapes))
	for i := range c.Instances {
		n += c.Instances[i].Cell.CountShapes()
	}
	return n
}

// PortNames returns the cell's port names in sorted order.
func (c *Cell) PortNames() []string {
	names := make([]string, len(c.Ports))
	for i, p := range c.Ports {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
