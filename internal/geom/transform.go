package geom

// Orient is one of the eight Manhattan orientations: a rotation by a
// multiple of 90° optionally preceded by a mirror about the y axis
// (x -> -x). The zero value is the identity.
type Orient struct {
	Rot    int  // quarter-turns CCW, 0..3
	Mirror bool // mirror X before rotating
}

// The eight named orientations, following the usual R0/R90/... naming.
var (
	R0    = Orient{Rot: 0}
	R90   = Orient{Rot: 1}
	R180  = Orient{Rot: 2}
	R270  = Orient{Rot: 3}
	MX    = Orient{Rot: 2, Mirror: true} // mirror about x axis (y -> -y)
	MY    = Orient{Rot: 0, Mirror: true} // mirror about y axis (x -> -x)
	MXR90 = Orient{Rot: 1, Mirror: true}
	MYR90 = Orient{Rot: 3, Mirror: true}
)

// AllOrients lists the eight distinct orientations.
var AllOrients = []Orient{R0, R90, R180, R270, MX, MY, MXR90, MYR90}

func (o Orient) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	case MX:
		return "MX"
	case MY:
		return "MY"
	case MXR90:
		return "MXR90"
	case MYR90:
		return "MYR90"
	}
	return "R?"
}

// TransformPoint applies o to p (about the origin).
func TransformPoint(p Point, o Orient) Point {
	if o.Mirror {
		p.X = -p.X
	}
	switch o.Rot & 3 {
	case 1:
		p.X, p.Y = -p.Y, p.X
	case 2:
		p.X, p.Y = -p.X, -p.Y
	case 3:
		p.X, p.Y = p.Y, -p.X
	}
	return p
}

// TransformRect applies o to r, returning a canonical rect.
func TransformRect(r Rect, o Orient) Rect {
	a := TransformPoint(Point{r.X0, r.Y0}, o)
	b := TransformPoint(Point{r.X1, r.Y1}, o)
	return Rect{a.X, a.Y, b.X, b.Y}.Canon()
}

// TransformDir applies o to a port edge direction.
func TransformDir(d PortDir, o Orient) PortDir {
	if d == Inner {
		return Inner
	}
	// Represent as a unit vector, transform, convert back.
	var v Point
	switch d {
	case North:
		v = Point{0, 1}
	case South:
		v = Point{0, -1}
	case East:
		v = Point{1, 0}
	case West:
		v = Point{-1, 0}
	}
	v = TransformPoint(v, o)
	switch {
	case v.Y > 0:
		return North
	case v.Y < 0:
		return South
	case v.X > 0:
		return East
	default:
		return West
	}
}

// Compose returns the orientation equivalent to applying inner first,
// then outer: Compose(outer, inner)(p) == outer(inner(p)).
//
// The eight Manhattan orientations form a closed group, so composition
// is mathematically total; the panic below is a documented invariant
// site of the cerr panic policy (see package cerr), unreachable from
// any input.
func Compose(outer, inner Orient) Orient {
	// Work out action on basis vectors.
	ex := TransformPoint(TransformPoint(Point{1, 0}, inner), outer)
	ey := TransformPoint(TransformPoint(Point{0, 1}, inner), outer)
	for _, o := range AllOrients {
		if TransformPoint(Point{1, 0}, o) == ex && TransformPoint(Point{0, 1}, o) == ey {
			return o
		}
	}
	panic("geom: compose produced a non-Manhattan transform")
}

// Invert returns the orientation o⁻¹ such that Compose(o, Invert(o))
// is the identity. Inversion is total over the closed orientation
// group; the panic below is a documented invariant site of the cerr
// panic policy (see package cerr).
func Invert(o Orient) Orient {
	for _, inv := range AllOrients {
		if Compose(o, inv) == R0 {
			return inv
		}
	}
	panic("geom: orientation has no inverse")
}
