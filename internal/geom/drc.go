package geom

import (
	"fmt"
	"sort"
)

// Rule is a minimum width and same-layer spacing constraint for one
// layer, in dbu. Zero values disable the corresponding check.
type Rule struct {
	MinWidth   int
	MinSpacing int
}

// Violation records one design-rule failure found by Check.
type Violation struct {
	Layer Layer
	Kind  string // "width" or "spacing"
	A, B  Rect   // offending rect(s); B is zero for width violations
	Got   int
	Want  int
}

func (v Violation) String() string {
	if v.Kind == "width" {
		return fmt.Sprintf("layer %d width %d < %d at %v", v.Layer, v.Got, v.Want, v.A)
	}
	return fmt.Sprintf("layer %d spacing %d < %d between %v and %v", v.Layer, v.Got, v.Want, v.A, v.B)
}

// Check runs a simplified width/spacing DRC over the flattened shapes
// of the cell. Same-net shapes that touch or overlap are exempt from
// spacing (they are connected wiring); distinct-net or disjoint
// same-layer shapes must satisfy the layer's MinSpacing. The check is
// O(n log n) per layer via a sweep over x-sorted shapes.
//
// maxViolations bounds the report size; 0 means unlimited.
func Check(c *Cell, rules map[Layer]Rule, maxViolations int) []Violation {
	shapes := c.Flatten()
	byLayer := make(map[Layer][]Shape)
	for _, s := range shapes {
		byLayer[s.Layer] = append(byLayer[s.Layer], s)
	}
	var out []Violation
	layers := make([]Layer, 0, len(byLayer))
	for l := range byLayer {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
	for _, l := range layers {
		rule, ok := rules[l]
		if !ok {
			continue
		}
		ss := byLayer[l]
		// Width check.
		if rule.MinWidth > 0 {
			for _, s := range ss {
				w := min(s.Rect.W(), s.Rect.H())
				if w < rule.MinWidth {
					out = append(out, Violation{Layer: l, Kind: "width", A: s.Rect, Got: w, Want: rule.MinWidth})
					if maxViolations > 0 && len(out) >= maxViolations {
						return out
					}
				}
			}
		}
		// Spacing check via x-sweep.
		if rule.MinSpacing > 0 {
			sort.Slice(ss, func(i, j int) bool { return ss[i].Rect.X0 < ss[j].Rect.X0 })
			for i := range ss {
				for j := i + 1; j < len(ss); j++ {
					if ss[j].Rect.X0-ss[i].Rect.X1 >= rule.MinSpacing {
						break // sorted by X0: no later shape can violate in x
					}
					a, b := ss[i], ss[j]
					sep := a.Rect.Separation(b.Rect)
					if sep >= rule.MinSpacing {
						continue
					}
					// Touching/overlapping shapes on the same net are wiring.
					if sep == 0 && sameNet(a, b) {
						continue
					}
					if sep == 0 && (a.Net == "" || b.Net == "") && a.Rect.Expand(1).Overlaps(b.Rect) {
						// Anonymous wiring abutting something is a connection.
						continue
					}
					out = append(out, Violation{Layer: l, Kind: "spacing", A: a.Rect, B: b.Rect, Got: sep, Want: rule.MinSpacing})
					if maxViolations > 0 && len(out) >= maxViolations {
						return out
					}
				}
			}
		}
	}
	return out
}

func sameNet(a, b Shape) bool {
	return a.Net != "" && a.Net == b.Net
}
