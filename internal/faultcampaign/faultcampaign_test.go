package faultcampaign

import (
	"context"
	"strings"
	"testing"
)

// TestCampaignIsClean is the acceptance gate of the hardening layer:
// every adversarial case must end in a clean compile or a typed cerr
// error — no panics, no hangs, no untyped errors.
func TestCampaignIsClean(t *testing.T) {
	cases := Cases()
	if len(cases) < 50 {
		t.Fatalf("campaign has %d cases, contract requires >= 50", len(cases))
	}
	rep := Run(cases, 0)
	for _, res := range rep.Results {
		if !res.Outcome.Acceptable() {
			t.Errorf("%-35s [%s] %v: %s", res.Name, res.Kind, res.Outcome, res.Detail)
		}
	}
	if t.Failed() {
		counts := rep.Counts()
		t.Fatalf("campaign dirty: %d ok, %d typed, %d untyped, %d panic, %d hang",
			counts[OK], counts[TypedError], counts[UntypedError], counts[Panicked], counts[Hung])
	}
}

// TestControlCasesCompile: the four clean control inputs must compile,
// proving the campaign is not rejecting everything.
func TestControlCasesCompile(t *testing.T) {
	rep := Run(Cases(), 0)
	controls := 0
	for _, res := range rep.Results {
		if strings.HasPrefix(res.Name, "control:") {
			controls++
			if res.Outcome != OK {
				t.Errorf("control case %q did not compile: %v %s", res.Name, res.Outcome, res.Detail)
			}
		}
	}
	if controls < 4 {
		t.Fatalf("only %d control cases found", controls)
	}
}

// TestAdversarialCasesRejected: no adversarial case may silently
// succeed — each must carry a taxonomy code.
func TestAdversarialCasesRejected(t *testing.T) {
	rep := Run(Cases(), 0)
	for _, res := range rep.Results {
		if strings.HasPrefix(res.Name, "control:") {
			continue
		}
		if res.Outcome == OK {
			t.Errorf("adversarial case %q compiled cleanly — corruption not detected", res.Name)
		}
		if res.Outcome == TypedError && res.Code.String() == "ERR_UNKNOWN" {
			t.Errorf("case %q rejected without a specific code: %s", res.Name, res.Detail)
		}
	}
}

// TestRunnerClassifiesPanics: the harness itself must convert an
// escaped panic into a Panicked verdict, not die.
func TestRunnerClassifiesPanics(t *testing.T) {
	rep := Run([]Case{{Name: "boom", Kind: "meta", Run: func(context.Context) error { panic("boom") }}}, 0)
	if got := rep.Results[0].Outcome; got != Panicked {
		t.Fatalf("want Panicked, got %v", got)
	}
	if rep.Clean() {
		t.Fatal("panicking campaign reported clean")
	}
}
