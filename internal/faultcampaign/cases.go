package faultcampaign

import (
	"bytes"
	"context"
	"strings"

	"repro/internal/bist"
	"repro/internal/compiler"
	"repro/internal/march"
	"repro/internal/tech"
)

// goodDeck is a minimal valid process deck; the adversarial deck cases
// are mutations of it, so each case isolates exactly one corruption.
const goodDeck = `name campaign05
feature_nm 500
metals 3
vdd 3.3
kp_n 110e-6
kp_p 38e-6
vt_n 0.7
vt_p -0.8
`

// smallParams returns fast-to-compile parameters against the given
// process, for the cases that make it past parsing.
func smallParams(p *tech.Process) compiler.Params {
	return compiler.Params{Words: 64, BPW: 4, BPC: 4, Spares: 4, BufSize: 1, Process: p}
}

// deckCase parses an adversarial deck and, if it parses, compiles a
// small RAM on it — corrupt decks must die in Parse or Validate with a
// typed error, never downstream.
func deckCase(name, deck string) Case {
	return Case{Name: name, Kind: "deck", Run: func(ctx context.Context) error {
		p, err := tech.Parse(strings.NewReader(deck))
		if err != nil {
			return err
		}
		_, err = compiler.CompileCtx(ctx, smallParams(p))
		return err
	}}
}

// marchCase parses an adversarial march string and, if it parses,
// compiles with it microprogrammed into the TRPLA.
func marchCase(name, notation string) Case {
	return Case{Name: name, Kind: "march", Run: func(ctx context.Context) error {
		t, err := march.Parse(name, notation)
		if err != nil {
			return err
		}
		pp := smallParams(tech.CDA07)
		pp.Test = t
		_, err = compiler.CompileCtx(ctx, pp)
		return err
	}}
}

// planesCase reads adversarial TRPLA plane files and, if they parse,
// compiles with the loaded control program.
func planesCase(name string, stateBits int, andPlane, orPlane string) Case {
	return Case{Name: name, Kind: "planes", Run: func(ctx context.Context) error {
		prog, err := bist.ReadPlanes(name, stateBits, strings.NewReader(andPlane), strings.NewReader(orPlane))
		if err != nil {
			return err
		}
		pp := smallParams(tech.CDA07)
		pp.Program = prog
		_, err = compiler.CompileCtx(ctx, pp)
		return err
	}}
}

// paramsCase compiles degenerate geometry/sizing parameters against a
// known-good process.
func paramsCase(name string, mut func(*compiler.Params)) Case {
	return Case{Name: name, Kind: "params", Run: func(ctx context.Context) error {
		pp := smallParams(tech.CDA07)
		mut(&pp)
		_, err := compiler.CompileCtx(ctx, pp)
		return err
	}}
}

// mutateDeck replaces the line starting with key in goodDeck.
func mutateDeck(key, replacement string) string {
	var b strings.Builder
	for _, line := range strings.Split(goodDeck, "\n") {
		if strings.HasPrefix(line, key) {
			if replacement != "" {
				b.WriteString(replacement + "\n")
			}
			continue
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// Cases returns the built-in adversarial campaign: every input class
// the pipeline accepts from users, each corrupted in the ways the
// hardening layer must survive.
func Cases() []Case {
	var cs []Case

	// --- Control cases: the clean versions of each input class must
	// still compile, so a campaign pass can't be faked by rejecting
	// everything.
	cs = append(cs,
		deckCase("control: valid deck", goodDeck),
		marchCase("control: valid march", "{b(w0); u(r0,w1); d(r1,w0)}"),
		Case{Name: "control: round-trip planes", Kind: "planes", Run: func(ctx context.Context) error {
			prog, err := bist.Assemble(march.IFA9())
			if err != nil {
				return err
			}
			var andB, orB bytes.Buffer
			if err := prog.WritePlanes(&andB, &orB); err != nil {
				return err
			}
			reread, err := bist.ReadPlanes("roundtrip", prog.StateBits, &andB, &orB)
			if err != nil {
				return err
			}
			pp := smallParams(tech.CDA07)
			pp.Program = reread
			_, err = compiler.CompileCtx(ctx, pp)
			return err
		}},
		paramsCase("control: valid params", func(p *compiler.Params) {}),
	)

	// --- Adversarial process decks.
	cs = append(cs,
		deckCase("deck: empty", ""),
		deckCase("deck: whitespace only", "   \n\t\n  \n"),
		deckCase("deck: binary garbage", "\x00\x01\xff\xfe name \x7f\n\x00\x00"),
		deckCase("deck: truncated mid-key", goodDeck[:len(goodDeck)/2]),
		deckCase("deck: missing name", mutateDeck("name", "")),
		deckCase("deck: missing feature", mutateDeck("feature_nm", "")),
		deckCase("deck: missing kp_n", mutateDeck("kp_n", "")),
		deckCase("deck: NaN vdd", mutateDeck("vdd", "vdd NaN")),
		deckCase("deck: +Inf vdd", mutateDeck("vdd", "vdd +Inf")),
		deckCase("deck: overflow literal", mutateDeck("kp_n", "kp_n 1e309")),
		deckCase("deck: negative vdd", mutateDeck("vdd", "vdd -3.3")),
		deckCase("deck: absurd vdd", mutateDeck("vdd", "vdd 5000")),
		deckCase("deck: zero feature", mutateDeck("feature_nm", "feature_nm 0")),
		deckCase("deck: negative feature", mutateDeck("feature_nm", "feature_nm -500")),
		deckCase("deck: odd feature", mutateDeck("feature_nm", "feature_nm 501")),
		deckCase("deck: gigantic feature", mutateDeck("feature_nm", "feature_nm 999999999")),
		deckCase("deck: zero metals", mutateDeck("metals", "metals 0")),
		deckCase("deck: absurd metals", mutateDeck("metals", "metals 4096")),
		deckCase("deck: non-numeric value", mutateDeck("kp_p", "kp_p banana")),
		deckCase("deck: three-field line", goodDeck+"rogue key value\n"),
		deckCase("deck: bad rule layer", goodDeck+"rule unobtanium width 3 spacing 3\n"),
		deckCase("deck: bad rule numbers", goodDeck+"rule metal1 width -3 spacing 0\n"),
		deckCase("deck: oversized line", goodDeck+strings.Repeat("x", 100_000)+" 1\n"),
		deckCase("deck: key flood", goodDeck+func() string {
			var b strings.Builder
			for i := 0; i < 300; i++ {
				b.WriteString("key")
				b.WriteByte(byte('a' + i%26))
				b.WriteString(string(rune('a'+(i/26)%26)) + " 1\n")
			}
			return b.String()
		}()),
	)

	// --- Malformed march strings.
	cs = append(cs,
		marchCase("march: empty", ""),
		marchCase("march: braces only", "{}"),
		marchCase("march: unknown direction", "{x(w0)}"),
		marchCase("march: missing parens", "{u w0}"),
		marchCase("march: unclosed paren", "{u(r0,w1}"),
		marchCase("march: empty element", "{u()}"),
		marchCase("march: unknown op", "{u(q7)}"),
		marchCase("march: bad data bit", "{u(w2)}"),
		marchCase("march: trailing delay", "{u(w0); Del}"),
		marchCase("march: unicode garbage", "{⇑(日本語)}"),
		marchCase("march: nested braces", "{{u(w0)}}"),
		marchCase("march: op flood", "{u("+strings.Repeat("r0,", 2000)+"w0)}"),
		marchCase("march: element flood", strings.Repeat("u(w0);", 5000)),
		marchCase("march: null bytes", "{u(\x00w0)}"),
	)

	// --- Corrupt TRPLA plane files.
	longRows := func(n int, row string) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(row + "\n")
		}
		return b.String()
	}
	cs = append(cs,
		planesCase("planes: empty", 4, "", ""),
		planesCase("planes: comments only", 4, "# nothing\n", "# nothing\n"),
		planesCase("planes: zero state bits", 0, "----\n", "0000\n"),
		planesCase("planes: absurd state bits", 64, "----\n", "0000\n"),
		planesCase("planes: row count mismatch", 4, "--------\n--------\n", "--------\n"),
		planesCase("planes: AND too narrow", 4, "--\n", longRows(1, strings.Repeat("0", 4+bistOutputsFor(4)))),
		planesCase("planes: OR too narrow", 4, longRows(1, strings.Repeat("-", 4+bist.NumConds)), "0\n"),
		planesCase("planes: bad AND char", 4,
			"2"+strings.Repeat("-", 3+bist.NumConds)+"\n",
			strings.Repeat("0", bistOutputsFor(4))+"\n"),
		planesCase("planes: bad OR char", 4,
			strings.Repeat("-", 4+bist.NumConds)+"\n",
			"x"+strings.Repeat("0", bistOutputsFor(4)-1)+"\n"),
		planesCase("planes: row flood", 2,
			longRows(70_000, strings.Repeat("-", 2+bist.NumConds)),
			longRows(70_000, strings.Repeat("0", bistOutputsFor(2)))),
		planesCase("planes: oversized line", 4, strings.Repeat("-", 100_000)+"\n", "0000\n"),
		planesCase("planes: binary garbage", 4, "\x00\xff\x00\xff\n", "\x01\x02\x03\x04\n"),
	)

	// --- Degenerate geometries and sizing.
	cs = append(cs,
		paramsCase("params: nil process", func(p *compiler.Params) { p.Process = nil }),
		paramsCase("params: zero words", func(p *compiler.Params) { p.Words = 0 }),
		paramsCase("params: negative words", func(p *compiler.Params) { p.Words = -64 }),
		paramsCase("params: zero bpw", func(p *compiler.Params) { p.BPW = 0 }),
		paramsCase("params: non-pow2 bpc", func(p *compiler.Params) { p.BPC = 3 }),
		paramsCase("params: words not divisible", func(p *compiler.Params) { p.Words = 64; p.BPC = 128 }),
		paramsCase("params: non-pow2 words", func(p *compiler.Params) { p.Words = 60 }),
		paramsCase("params: odd spare count", func(p *compiler.Params) { p.Spares = 5 }),
		paramsCase("params: negative spares", func(p *compiler.Params) { p.Spares = -4 }),
		paramsCase("params: spares exceed menu", func(p *compiler.Params) { p.Spares = 1024 }),
		paramsCase("params: zero buffer size", func(p *compiler.Params) { p.BufSize = 0 }),
		paramsCase("params: absurd buffer size", func(p *compiler.Params) { p.BufSize = 99 }),
		paramsCase("params: negative straps", func(p *compiler.Params) { p.StrapCells = -1 }),
		paramsCase("params: single row", func(p *compiler.Params) { p.Words = 16; p.BPC = 16 }),
		paramsCase("params: negative refine budget", func(p *compiler.Params) { p.RefineIterations = -1 }),
		paramsCase("params: int overflow bait", func(p *compiler.Params) { p.Words = 1 << 62; p.BPC = 1 << 31 }),
	)
	return cs
}

// bistOutputsFor mirrors bist.Program.numOutputs for building plane
// rows of the right (or deliberately wrong) width.
func bistOutputsFor(stateBits int) int { return bist.NumSigs + stateBits }
