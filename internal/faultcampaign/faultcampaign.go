// Package faultcampaign is the adversarial-input harness for the
// BISRAMGEN pipeline: it feeds truncated, non-finite, oversized and
// plain garbage process decks, corrupt TRPLA plane files, malformed
// march strings and degenerate geometries through the full
// compiler.Compile flow and classifies every outcome. The hardening
// contract under test is that every case ends in a typed cerr error
// (or a clean compile) — never a panic, never a hang, never an
// untyped error. The suite runs in CI (TestCampaignIsClean) and on
// demand via `bisrsim faultcampaign`.
package faultcampaign

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cerr"
	"repro/internal/obs"
)

// Outcome classifies what one adversarial input did to the pipeline.
type Outcome int

// Outcome values. Only OK and TypedError are acceptable; the other
// three are hardening regressions.
const (
	// OK: the pipeline accepted the input (possibly with recorded
	// degradations).
	OK Outcome = iota
	// TypedError: the pipeline rejected the input with a typed cerr
	// error. This is the expected outcome for adversarial inputs.
	TypedError
	// UntypedError: an error escaped without a taxonomy code.
	UntypedError
	// Panicked: a panic escaped the pipeline's recover guards.
	Panicked
	// Hung: the case did not return before the campaign deadline.
	Hung
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case TypedError:
		return "typed-error"
	case UntypedError:
		return "UNTYPED-ERROR"
	case Panicked:
		return "PANIC"
	case Hung:
		return "HANG"
	}
	return "?"
}

// Acceptable reports whether the outcome satisfies the hardening
// contract.
func (o Outcome) Acceptable() bool { return o == OK || o == TypedError }

// Case is one adversarial input: a named thunk that pushes the input
// through the pipeline and returns whatever the pipeline returned.
type Case struct {
	Name string
	// Kind groups cases in the report: "deck", "march", "planes",
	// "params", "planes+compile", ...
	Kind string
	// Run executes the case under ctx (which may carry an obs.Trace, so
	// pipeline stage spans land in the campaign trace). It must be safe
	// to call from a fresh goroutine.
	Run func(ctx context.Context) error
}

// Result is the classified outcome of one case.
type Result struct {
	Name    string
	Kind    string
	Outcome Outcome
	// Code is the taxonomy code for TypedError outcomes.
	Code cerr.Code
	// Detail is the error text (or panic value) behind the outcome.
	Detail  string
	Elapsed time.Duration
}

// Report aggregates a campaign run.
type Report struct {
	Results []Result
	// Trace collects one span per case (plus nested pipeline stage
	// spans) when the campaign was started with RunTraced.
	Trace *obs.Trace
}

// Clean reports whether every case ended acceptably.
func (r *Report) Clean() bool {
	for _, res := range r.Results {
		if !res.Outcome.Acceptable() {
			return false
		}
	}
	return true
}

// Counts tallies outcomes.
func (r *Report) Counts() map[Outcome]int {
	out := map[Outcome]int{}
	for _, res := range r.Results {
		out[res.Outcome]++
	}
	return out
}

// DefaultTimeout bounds each case. The pipeline's own kernels are
// budget-capped, so a healthy case returns in milliseconds; the
// timeout exists to convert a hardening regression into a Hung verdict
// instead of wedging the campaign.
const DefaultTimeout = 30 * time.Second

// Run executes every case, each on its own goroutine with a recover
// barrier and the given per-case timeout (0 means DefaultTimeout).
// A timed-out case's goroutine is abandoned, not killed — acceptable
// for a diagnostic harness.
func Run(cases []Case, timeout time.Duration) *Report {
	return RunTraced(cases, timeout, nil)
}

// RunTraced is Run with an optional span collector: each case records
// one span (annotated with kind and outcome) and the pipeline's own
// stage spans nest underneath, so a campaign trace shows exactly where
// each adversarial input spent its time. A nil trace is Run.
func RunTraced(cases []Case, timeout time.Duration, tr *obs.Trace) *Report {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	rep := &Report{Trace: tr}
	for _, c := range cases {
		rep.Results = append(rep.Results, runOne(c, timeout, tr))
	}
	return rep
}

func runOne(c Case, timeout time.Duration, tr *obs.Trace) Result {
	res := Result{Name: c.Name, Kind: c.Kind}
	done := make(chan Result, 1)
	ctx := obs.WithTrace(context.Background(), tr)
	start := time.Now()
	go func() {
		r := res
		cctx, endSpan := obs.Start(ctx, c.Name)
		defer func() {
			if p := recover(); p != nil {
				r.Outcome = Panicked
				r.Detail = fmt.Sprintf("panic: %v", p)
			}
			// A timed-out case's abandoned goroutine still completes its
			// span when (if) it returns, which is the honest record.
			endSpan(obs.String("kind", c.Kind), obs.String("outcome", r.Outcome.String()))
			done <- r
		}()
		err := c.Run(cctx)
		switch {
		case err == nil:
			r.Outcome = OK
		case cerr.IsTyped(err):
			r.Outcome = TypedError
			r.Code = cerr.CodeOf(err)
			r.Detail = err.Error()
		default:
			r.Outcome = UntypedError
			r.Detail = err.Error()
		}
	}()
	select {
	case r := <-done:
		r.Elapsed = time.Since(start)
		return r
	case <-time.After(timeout):
		res.Outcome = Hung
		res.Detail = fmt.Sprintf("no response within %v", timeout)
		res.Elapsed = time.Since(start)
		return res
	}
}
