// Package render emits layout plots: SVG (the equivalents of the
// paper's Figs. 6 and 7) and a coarse ASCII floorplan for terminals.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Options controls plot generation.
type Options struct {
	// Depth limits hierarchy flattening: instances deeper than Depth
	// render as outlined boxes with their cell name. Depth 0 draws
	// only top-level instance outlines.
	Depth int
	// MaxShapes caps emitted SVG elements (0 = 200k).
	MaxShapes int
	// WidthPx scales the drawing (0 = 1200).
	WidthPx int
	// Legend adds a layer-colour legend strip under the plot.
	Legend bool
}

var layerColors = map[geom.Layer]string{
	tech.NWell:   "#f2e8c9",
	tech.Active:  "#7bd37b",
	tech.Poly:    "#d64545",
	tech.NPlus:   "#c9e4a0",
	tech.PPlus:   "#e4c9a0",
	tech.Contact: "#222222",
	tech.Metal1:  "#4a6fd0",
	tech.Via1:    "#101010",
	tech.Metal2:  "#b06fd0",
	tech.Via2:    "#101010",
	tech.Metal3:  "#d0a84a",
}

type svgItem struct {
	rect  geom.Rect
	layer geom.Layer
	label string // non-empty for outline boxes
}

// SVG renders the cell to an SVG document string.
func SVG(c *geom.Cell, o Options) string {
	if o.MaxShapes == 0 {
		o.MaxShapes = 200000
	}
	if o.WidthPx == 0 {
		o.WidthPx = 1200
	}
	var items []svgItem
	collect(c, geom.Orient{}, geom.Point{}, o.Depth, &items, o.MaxShapes)
	b := c.Bounds()
	if b.Empty() {
		b = geom.R(0, 0, 1, 1)
	}
	legendH := 0
	if o.Legend {
		legendH = b.W() / 20
	}
	scale := float64(o.WidthPx) / float64(b.W())
	hPx := int(float64(b.H()+legendH) * scale)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="%d %d %d %d">`+"\n",
		o.WidthPx, hPx, b.X0, b.Y0, b.W(), b.H()+legendH)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#ffffff"/>`+"\n", b.X0, b.Y0, b.W(), b.H())
	// Draw lower layers first.
	sort.SliceStable(items, func(i, j int) bool { return items[i].layer < items[j].layer })
	for _, it := range items {
		r := it.rect
		// Flip y (SVG y grows down).
		y := b.Y0 + b.Y1 - r.Y1
		if it.label != "" {
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#666" stroke-width="%d"/>`+"\n",
				r.X0, y, r.W(), r.H(), max(1, b.W()/600))
			fs := max(r.H()/8, b.W()/120)
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="%d" fill="#333">%s</text>`+"\n",
				r.X0+r.W()/20, y+r.H()/2, fs, it.label)
			continue
		}
		color, ok := layerColors[it.layer]
		if !ok {
			color = "#999999"
		}
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.6"/>`+"\n",
			r.X0, y, r.W(), r.H(), color)
	}
	if o.Legend {
		drawn := map[geom.Layer]bool{}
		for _, it := range items {
			if it.label == "" {
				drawn[it.layer] = true
			}
		}
		var layers []geom.Layer
		for l := range drawn {
			layers = append(layers, l)
		}
		sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
		y := b.Y0 + b.Y1 - b.Y0 + legendH/4 // below the flipped plot
		sw := b.W() / (3 * max(1, len(layers)))
		fs := legendH / 2
		for i, l := range layers {
			x := b.X0 + i*3*sw
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.8"/>`+"\n",
				x, y, sw, legendH/2, layerColors[l])
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="%d" fill="#333">%s</text>`+"\n",
				x+sw+sw/8, y+legendH/2, fs, tech.LayerName(l))
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func collect(c *geom.Cell, o geom.Orient, at geom.Point, depth int, out *[]svgItem, cap int) {
	if len(*out) >= cap {
		return
	}
	for _, s := range c.Shapes {
		if len(*out) >= cap {
			return
		}
		*out = append(*out, svgItem{rect: geom.TransformRect(s.Rect, o).Translate(at), layer: s.Layer})
	}
	for i := range c.Instances {
		in := &c.Instances[i]
		co := geom.Compose(o, in.Orient)
		cAt := geom.TransformPoint(in.At, o).Add(at)
		if depth <= 0 {
			*out = append(*out, svgItem{
				rect:  geom.TransformRect(in.Cell.Bounds(), co).Translate(cAt),
				layer: 100, label: in.Name,
			})
			if len(*out) >= cap {
				return
			}
			continue
		}
		collect(in.Cell, co, cAt, depth-1, out, cap)
	}
}

// ASCII renders the top-level instances of a cell as a character-grid
// floorplan, for quick terminal inspection.
func ASCII(c *geom.Cell, cols int) string {
	if cols <= 0 {
		cols = 78
	}
	b := c.Bounds()
	if b.Empty() {
		return "(empty cell)\n"
	}
	rows := int(float64(cols) * float64(b.H()) / float64(b.W()) / 2.2)
	if rows < 6 {
		rows = 6
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	mark := byte('A')
	var legend []string
	for i := range c.Instances {
		in := &c.Instances[i]
		r := in.Bounds()
		x0 := (r.X0 - b.X0) * cols / b.W()
		x1 := (r.X1 - b.X0) * cols / b.W()
		y0 := (r.Y0 - b.Y0) * rows / b.H()
		y1 := (r.Y1 - b.Y0) * rows / b.H()
		for y := y0; y < y1 && y < rows; y++ {
			for x := x0; x < x1 && x < cols; x++ {
				grid[rows-1-y][x] = mark
			}
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, in.Name))
		if mark == 'Z' {
			mark = 'a'
		} else {
			mark++
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Join(legend, "  "))
	sb.WriteByte('\n')
	return sb.String()
}
