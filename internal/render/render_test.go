package render

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func sample() *geom.Cell {
	leaf := geom.NewCell("leaf")
	leaf.AddShape(tech.Metal1, geom.R(0, 0, 100, 50), "a")
	leaf.AddShape(tech.Poly, geom.R(10, 10, 30, 40), "g")
	top := geom.NewCell("top")
	top.Place("l0", leaf, geom.R0, geom.Point{})
	top.Place("l1", leaf, geom.R90, geom.Point{X: 200})
	return top
}

func TestSVGFlattened(t *testing.T) {
	svg := SVG(sample(), Options{Depth: 2})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Two leaves x two shapes + background.
	if got := strings.Count(svg, "<rect"); got < 5 {
		t.Fatalf("too few rects: %d", got)
	}
	// Layer colors present.
	if !strings.Contains(svg, "#4a6fd0") || !strings.Contains(svg, "#d64545") {
		t.Fatal("missing layer colors")
	}
}

func TestSVGOutlineMode(t *testing.T) {
	svg := SVG(sample(), Options{Depth: 0})
	if !strings.Contains(svg, ">l0</text>") || !strings.Contains(svg, ">l1</text>") {
		t.Fatal("outline mode should label instances")
	}
	if strings.Contains(svg, "#d64545") {
		t.Fatal("outline mode should not draw leaf shapes")
	}
}

func TestSVGShapeCap(t *testing.T) {
	top := geom.NewCell("big")
	for i := 0; i < 1000; i++ {
		top.AddShape(tech.Metal1, geom.R(i*10, 0, i*10+5, 5), "")
	}
	svg := SVG(top, Options{Depth: 1, MaxShapes: 50})
	if got := strings.Count(svg, "<rect"); got > 60 {
		t.Fatalf("cap not applied: %d rects", got)
	}
}

func TestSVGLegend(t *testing.T) {
	svg := SVG(sample(), Options{Depth: 2, Legend: true})
	if !strings.Contains(svg, ">metal1</text>") || !strings.Contains(svg, ">poly</text>") {
		t.Fatalf("legend labels missing:\n%s", svg)
	}
	// Without the flag, no legend labels.
	plain := SVG(sample(), Options{Depth: 2})
	if strings.Contains(plain, ">metal1</text>") {
		t.Fatal("legend leaked without the option")
	}
}

func TestASCII(t *testing.T) {
	out := ASCII(sample(), 60)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("instances not drawn:\n%s", out)
	}
	if !strings.Contains(out, "A=l0") || !strings.Contains(out, "B=l1") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if ASCII(geom.NewCell("empty"), 10) != "(empty cell)\n" {
		t.Fatal("empty cell handling")
	}
}
