// Package reliability implements the paper's Section VIII field
// reliability model for built-in self-repairable RAMs: the survival
// function R(t), the failure probability density, the mean time to
// failure, and the spare-count crossover age at which more spares stop
// hurting and start helping.
package reliability

import (
	"math"

	"repro/internal/cerr"
)

// Model describes one BISR'ed RAM for reliability evaluation.
// The paper's formulation is word-granular: the module survives until
// t iff at most SpareWords() regular words have failed and every spare
// word is itself fault-free.
type Model struct {
	Rows   int // regular rows
	BPC    int // words per row
	BPW    int // bits per word
	Spares int // spare rows

	// LambdaBit is the hard-failure rate per bit per hour.
	LambdaBit float64
}

// Validate checks model sanity. Non-finite failure rates are rejected
// with cerr.ErrNonFinite (note a NaN rate would slide through a plain
// `<= 0` comparison), out-of-range finite values with
// cerr.ErrInvalidParams.
func (m Model) Validate() error {
	if m.Rows <= 0 || m.BPC <= 0 || m.BPW <= 0 || m.Spares < 0 {
		return cerr.New(cerr.CodeInvalidParams,
			"reliability: bad geometry rows=%d bpc=%d bpw=%d spares=%d", m.Rows, m.BPC, m.BPW, m.Spares)
	}
	if math.IsNaN(m.LambdaBit) || math.IsInf(m.LambdaBit, 0) {
		return cerr.New(cerr.CodeNonFinite, "reliability: non-finite failure rate")
	}
	if m.LambdaBit <= 0 {
		return cerr.New(cerr.CodeInvalidParams, "reliability: non-positive failure rate %g", m.LambdaBit)
	}
	return nil
}

// CheckAge validates an age axis value (hours): non-finite inputs are
// rejected with cerr.ErrNonFinite. Negative finite ages are legal —
// the survival function clamps them to R=1.
func CheckAge(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return cerr.New(cerr.CodeNonFinite, "reliability: non-finite age %v", t)
	}
	return nil
}

// ReliabilityErr is Reliability with full input checking: the model
// and the age must validate, otherwise the typed error is returned
// instead of a NaN.
func (m Model) ReliabilityErr(t float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := CheckAge(t); err != nil {
		return 0, err
	}
	return m.Reliability(t), nil
}

// MTTFErr is MTTF with model checking, so a NaN failure rate surfaces
// as cerr.ErrNonFinite rather than a nonsense integral.
func (m Model) MTTFErr() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return m.MTTF(), nil
}

// Words returns the regular word count.
func (m Model) Words() int { return m.Rows * m.BPC }

// SpareWords returns the spare word count s*bpc.
func (m Model) SpareWords() int { return m.Spares * m.BPC }

// WordFailProb returns q_w(t) = 1 - e^(-lambda*bpw*t): the probability
// that a bpw-bit word has failed by time t (hours).
func (m Model) WordFailProb(t float64) float64 {
	return 1 - math.Exp(-m.LambdaBit*float64(m.BPW)*t)
}

// Reliability returns R(t): the probability the module still works at
// age t hours, under the paper's criterion.
func (m Model) Reliability(t float64) float64 {
	if t <= 0 {
		return 1
	}
	q := m.WordFailProb(t)
	n := m.Words()
	s := m.SpareWords()
	return binomCDF(n, s, q) * math.Pow(1-q, float64(s))
}

// ReliabilityRowGranular is the row-level variant consistent with the
// TLB's row-replacement architecture: at most Spares faulty regular
// rows and all spare rows fault-free. It is the stricter (lower)
// curve; the paper's plots use the word-granular formula above.
func (m Model) ReliabilityRowGranular(t float64) float64 {
	if t <= 0 {
		return 1
	}
	cols := m.BPC * m.BPW
	qRow := 1 - math.Exp(-m.LambdaBit*float64(cols)*t)
	return binomCDF(m.Rows, m.Spares, qRow) * math.Pow(1-qRow, float64(m.Spares))
}

// FailurePDF returns f(t) = -dR/dt by central difference.
func (m Model) FailurePDF(t float64) float64 {
	h := math.Max(t*1e-4, 1e-3)
	return (m.Reliability(t-h) - m.Reliability(t+h)) / (2 * h)
}

// MTTF integrates R(t) from 0 to infinity with an adaptive horizon:
// the integration extends until R falls below 1e-12 of its initial
// value.
func (m Model) MTTF() float64 {
	// Find a horizon where R is negligible, by doubling.
	hi := 1000.0
	for m.Reliability(hi) > 1e-12 && hi < 1e12 {
		hi *= 2
	}
	return simpson(m.Reliability, 0, hi, 4000)
}

// CrossoverAge returns the age (hours) at which the reliability of
// the configuration with moreSpares overtakes the one with fewerSpares
// — the paper's observation that extra spares pay off only after
// several years. It returns an error when no crossover exists within
// the horizon.
func CrossoverAge(base Model, fewerSpares, moreSpares int, horizonHours float64) (float64, error) {
	if math.IsNaN(horizonHours) || math.IsInf(horizonHours, 0) {
		return 0, cerr.New(cerr.CodeNonFinite, "reliability: non-finite horizon %v", horizonHours)
	}
	if fewerSpares < 0 || moreSpares <= fewerSpares || horizonHours <= 1 {
		return 0, cerr.New(cerr.CodeInvalidParams,
			"reliability: bad crossover query spares %d..%d horizon %g", fewerSpares, moreSpares, horizonHours)
	}
	a := base
	a.Spares = fewerSpares
	if err := a.Validate(); err != nil {
		return 0, err
	}
	b := base
	b.Spares = moreSpares
	diff := func(t float64) float64 { return b.Reliability(t) - a.Reliability(t) }
	// Expect diff < 0 early, > 0 late.
	lo, hi := 1.0, horizonHours
	if diff(lo) >= 0 {
		return 0, cerr.New(cerr.CodeInvalidParams,
			"reliability: %d spares already better at t=%g", moreSpares, lo)
	}
	if diff(hi) <= 0 {
		return 0, cerr.New(cerr.CodeInvalidParams,
			"reliability: no crossover before %g hours", horizonHours)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// HoursPerYear converts years to the hour axis used throughout.
const HoursPerYear = 8760.0

func binomCDF(n, k int, p float64) float64 {
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		if k >= n {
			return 1
		}
		return 0
	}
	q := 1 - p
	logTerm := float64(n) * math.Log(q)
	term := math.Exp(logTerm)
	sum := term
	for i := 0; i < k && i < n; i++ {
		term *= float64(n-i) / float64(i+1) * (p / q)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
