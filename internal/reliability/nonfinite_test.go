package reliability

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cerr"
)

func goodModel() Model {
	return Model{Rows: 64, BPC: 4, BPW: 8, Spares: 4, LambdaBit: 1e-9}
}

// TestValidateNonFinite: a NaN failure rate must not slip through the
// `<= 0` comparison (NaN comparisons are always false), and every
// rejection carries its taxonomy code.
func TestValidateNonFinite(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Model)
		want *cerr.Error
	}{
		{"nan lambda", func(m *Model) { m.LambdaBit = math.NaN() }, cerr.ErrNonFinite},
		{"+inf lambda", func(m *Model) { m.LambdaBit = math.Inf(1) }, cerr.ErrNonFinite},
		{"-inf lambda", func(m *Model) { m.LambdaBit = math.Inf(-1) }, cerr.ErrNonFinite},
		{"zero lambda", func(m *Model) { m.LambdaBit = 0 }, cerr.ErrInvalidParams},
		{"negative lambda", func(m *Model) { m.LambdaBit = -1e-9 }, cerr.ErrInvalidParams},
		{"zero rows", func(m *Model) { m.Rows = 0 }, cerr.ErrInvalidParams},
		{"negative spares", func(m *Model) { m.Spares = -2 }, cerr.ErrInvalidParams},
	}
	if err := goodModel().Validate(); err != nil {
		t.Fatalf("baseline model rejected: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := goodModel()
			tc.mut(&m)
			if err := m.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
			if _, err := m.MTTFErr(); !errors.Is(err, tc.want) {
				t.Fatalf("MTTFErr: want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestReliabilityErrAge covers the age-axis guard.
func TestReliabilityErrAge(t *testing.T) {
	m := goodModel()
	cases := []struct {
		name string
		t    float64
		want *cerr.Error // nil = accepted
	}{
		{"zero", 0, nil},
		{"negative (clamps to R=1)", -10, nil},
		{"year", HoursPerYear, nil},
		{"nan", math.NaN(), cerr.ErrNonFinite},
		{"+inf", math.Inf(1), cerr.ErrNonFinite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := m.ReliabilityErr(tc.t)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				if math.IsNaN(r) || r < 0 || r > 1 {
					t.Fatalf("R(%g) = %g out of [0,1]", tc.t, r)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestCrossoverAgeGuards covers the query guards on the crossover
// search.
func TestCrossoverAgeGuards(t *testing.T) {
	m := goodModel()
	if _, err := CrossoverAge(m, 4, 8, math.NaN()); !errors.Is(err, cerr.ErrNonFinite) {
		t.Fatalf("NaN horizon: %v", err)
	}
	if _, err := CrossoverAge(m, 4, 8, math.Inf(1)); !errors.Is(err, cerr.ErrNonFinite) {
		t.Fatalf("Inf horizon: %v", err)
	}
	if _, err := CrossoverAge(m, 8, 4, 1e6); !errors.Is(err, cerr.ErrInvalidParams) {
		t.Fatalf("inverted spare order: %v", err)
	}
	if _, err := CrossoverAge(m, -1, 4, 1e6); !errors.Is(err, cerr.ErrInvalidParams) {
		t.Fatalf("negative spares: %v", err)
	}
	bad := m
	bad.LambdaBit = math.NaN()
	if _, err := CrossoverAge(bad, 4, 8, 1e6); !errors.Is(err, cerr.ErrNonFinite) {
		t.Fatalf("NaN model: %v", err)
	}
}
