package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// fig5Model is the paper's Fig. 5 configuration: 1024 regular rows,
// bpc = bpw = 4. The per-cell hard-failure rate of 1e-8 per hour
// (1e-5 per kilo-hour) places the 4-vs-8-spare crossover in the
// multi-year range the paper reports (~8 years).
func fig5Model(spares int) Model {
	return Model{Rows: 1024, BPC: 4, BPW: 4, Spares: spares, LambdaBit: 1e-8}
}

func TestValidate(t *testing.T) {
	if err := fig5Model(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := fig5Model(4)
	bad.LambdaBit = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rate accepted")
	}
	bad2 := Model{Rows: -1, BPC: 4, BPW: 4, LambdaBit: 1}
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative rows accepted")
	}
}

func TestGeometry(t *testing.T) {
	m := fig5Model(4)
	if m.Words() != 4096 || m.SpareWords() != 16 {
		t.Fatalf("words %d spare words %d", m.Words(), m.SpareWords())
	}
}

func TestReliabilityBoundsAndMonotone(t *testing.T) {
	m := fig5Model(4)
	if m.Reliability(0) != 1 || m.Reliability(-5) != 1 {
		t.Fatal("R(<=0) must be 1")
	}
	prev := 1.0
	for _, yr := range []float64{1, 2, 5, 10, 20, 50} {
		r := m.Reliability(yr * HoursPerYear)
		if r < 0 || r > prev+1e-12 {
			t.Fatalf("R not in [0,1] or not monotone at %g years: %g (prev %g)", yr, r, prev)
		}
		prev = r
	}
}

func TestWordFailProb(t *testing.T) {
	m := fig5Model(4)
	q := m.WordFailProb(1e6)
	want := 1 - math.Exp(-1e-8*4*1e6)
	if math.Abs(q-want) > 1e-15 {
		t.Fatalf("q = %g want %g", q, want)
	}
}

func TestEarlyReliabilityDecreasesWithSpares(t *testing.T) {
	// The paper's headline observation: early in life, more spares
	// mean lower reliability (spares must stay fault-free).
	early := 1.0 * HoursPerYear
	r0 := fig5Model(0).Reliability(early)
	r4 := fig5Model(4).Reliability(early)
	r8 := fig5Model(8).Reliability(early)
	r16 := fig5Model(16).Reliability(early)
	// With 0 spares there is no repair at all: a single word failure
	// kills it, so r0 is NOT the best; compare among BISR configs.
	if !(r4 > r8 && r8 > r16) {
		t.Fatalf("early reliability ordering violated: %g %g %g", r4, r8, r16)
	}
	_ = r0
}

func TestLateReliabilityIncreasesWithSpares(t *testing.T) {
	late := 30.0 * HoursPerYear
	r0 := fig5Model(0).Reliability(late)
	r4 := fig5Model(4).Reliability(late)
	r8 := fig5Model(8).Reliability(late)
	r16 := fig5Model(16).Reliability(late)
	if !(r16 > r8 && r8 > r4 && r4 > r0) {
		t.Fatalf("late reliability ordering violated: %g %g %g %g", r0, r4, r8, r16)
	}
}

func TestCrossoverAgeInYearsRange(t *testing.T) {
	// 4-vs-8 spares crossover: the paper reports roughly 8 years
	// (~70000 h) for its rate; ours must land in a plausible
	// multi-year window for the same geometry.
	age, err := CrossoverAge(fig5Model(0), 4, 8, 100*HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	years := age / HoursPerYear
	if years < 1 || years > 50 {
		t.Fatalf("crossover at %.1f years, outside plausible window", years)
	}
	// More spares cross later: 8-vs-16 crossover should be later than
	// 4-vs-8.
	age2, err := CrossoverAge(fig5Model(0), 8, 16, 200*HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	if !(age2 > age) {
		t.Fatalf("8-16 crossover %.0fh should be after 4-8 crossover %.0fh", age2, age)
	}
}

func TestCrossoverErrors(t *testing.T) {
	// Horizon too small: no crossover.
	if _, err := CrossoverAge(fig5Model(0), 4, 8, 10); err == nil {
		t.Fatal("expected no-crossover error for tiny horizon")
	}
}

func TestMTTFPositiveAndOrdering(t *testing.T) {
	m4 := fig5Model(4)
	mttf4 := m4.MTTF()
	if mttf4 <= 0 {
		t.Fatalf("MTTF %g", mttf4)
	}
	// MTTF with spares beats MTTF without (repair extends life).
	mttf0 := fig5Model(0).MTTF()
	if !(mttf4 > mttf0) {
		t.Fatalf("MTTF ordering: %g vs %g", mttf4, mttf0)
	}
	// Sanity: the no-repair module with 4096 words of 4 bits has
	// MTTF = 1/(N*bpw*lambda) analytically (first failure kills it).
	want := 1 / (4096.0 * 4 * 1e-8)
	if math.Abs(mttf0-want)/want > 0.02 {
		t.Fatalf("no-repair MTTF %g, analytic %g", mttf0, want)
	}
}

func TestFailurePDFNonNegative(t *testing.T) {
	m := fig5Model(4)
	for _, yr := range []float64{0.5, 2, 8, 20} {
		if f := m.FailurePDF(yr * HoursPerYear); f < -1e-15 {
			t.Fatalf("pdf negative at %g years: %g", yr, f)
		}
	}
}

func TestRowGranularStricter(t *testing.T) {
	m := fig5Model(4)
	for _, yr := range []float64{1, 5, 15} {
		tH := yr * HoursPerYear
		if !(m.ReliabilityRowGranular(tH) <= m.Reliability(tH)+1e-12) {
			t.Fatalf("row-granular should be <= word-granular at %g years", yr)
		}
	}
}

// Property: R is within [0,1] and decreasing for random times.
func TestQuickReliabilityShape(t *testing.T) {
	m := fig5Model(8)
	f := func(a, b uint32) bool {
		t1 := float64(a%1000000) * 10
		t2 := float64(b%1000000) * 10
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		r1, r2 := m.Reliability(t1), m.Reliability(t2)
		return r1 >= r2-1e-12 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
