package bist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/march"
	"repro/internal/sram"
)

func TestAddGen(t *testing.T) {
	g := NewAddGen(8)
	g.Load(true)
	if g.Value() != 0 || g.Terminal() {
		t.Fatal("up load wrong")
	}
	for i := 1; i < 8; i++ {
		g.Step()
		if g.Value() != i {
			t.Fatalf("step %d: %d", i, g.Value())
		}
	}
	if !g.Terminal() {
		t.Fatal("should be terminal at 7")
	}
	g.Step()
	if g.Value() != 0 {
		t.Fatal("up wrap failed")
	}
	g.Load(false)
	if g.Value() != 7 || g.Terminal() {
		t.Fatal("down load wrong")
	}
	for i := 6; i >= 0; i-- {
		g.Step()
		if g.Value() != i {
			t.Fatalf("down step: %d", g.Value())
		}
	}
	if !g.Terminal() {
		t.Fatal("should be terminal at 0")
	}
	g.Step()
	if g.Value() != 7 {
		t.Fatal("down wrap failed")
	}
}

func TestDataGen(t *testing.T) {
	g := NewDataGen(4)
	g.Load()
	want := []uint64{0b0000, 0b0001, 0b0011, 0b0111, 0b1111}
	for i, w := range want {
		if g.Background() != w {
			t.Fatalf("bg %d = %04b want %04b", i, g.Background(), w)
		}
		if g.Done() != (i == len(want)-1) {
			t.Fatalf("done flag wrong at %d", i)
		}
		g.Step()
	}
	if g.Background() != 0 {
		t.Fatal("wrap failed")
	}
	g.Load()
	g.Step()
	if g.Pattern(false) != 0b0001 || g.Pattern(true) != 0b1110 {
		t.Fatalf("patterns %04b %04b", g.Pattern(false), g.Pattern(true))
	}
	if g.Compare(0b0001, false) || !g.Compare(0b0011, false) {
		t.Fatal("comparator wrong")
	}
	if g.Compare(0b1110, true) || !g.Compare(0b1111, true) {
		t.Fatal("inverted comparator wrong")
	}
	if len(g.Backgrounds()) != 5 {
		t.Fatal("background export wrong")
	}
}

func TestAssembleShape(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	// IFA-9: 1 INIT + 6 extra elemInits + 12 ops + bg + done = 21.
	if p.NumStates != 21 {
		t.Fatalf("IFA-9 states = %d, want 21", p.NumStates)
	}
	if p.StateBits != 5 {
		t.Fatalf("state bits = %d, want 5", p.StateBits)
	}
	if len(p.Terms) == 0 {
		t.Fatal("no terms")
	}
	// Paper: controller fits in 6 flip-flops (59 states); ours must
	// also fit in <= 6.
	if p.StateBits > 6 {
		t.Fatalf("state register exceeds the paper's 6 flip-flops: %d", p.StateBits)
	}
	if _, err := Assemble(march.Test{Name: "empty"}); err == nil {
		t.Fatal("empty test must fail to assemble")
	}
}

func newRAM(t *testing.T) *sram.Array {
	t.Helper()
	return sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 2})
}

func TestEngineFaultFree(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	a := newRAM(t)
	e := NewEngine(p, a, 4)
	var pass2Fired int
	e.OnPass2 = func() { pass2Fired++ }
	stats, err := e.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Captures != 0 || stats.Unsucc {
		t.Fatalf("fault-free run captured %d, unsucc=%v", stats.Captures, stats.Unsucc)
	}
	if pass2Fired != 1 {
		t.Fatalf("pass2 fired %d times", pass2Fired)
	}
	// Each pass applies 12 ops x 32 words x 5 backgrounds = 1920 ops;
	// two passes = 3840 = reads+writes.
	if got := stats.Reads + stats.Writes; got != 3840 {
		t.Fatalf("op count %d, want 3840", got)
	}
	// IFA-9 has 2 delay elements x 5 backgrounds x 2 passes = 20.
	if stats.Delays != 20 {
		t.Fatalf("delays %d, want 20", stats.Delays)
	}
}

func TestEngineMatchesMarchRun(t *testing.T) {
	// The microprogrammed engine must apply exactly the same ops as
	// the direct march interpreter.
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	a := newRAM(t)
	e := NewEngine(p, a, 4)
	stats, err := e.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b := newRAM(t)
	res := march.Run(b, march.IFA9(), march.JohnsonBackgrounds(4), 4)
	// Engine runs two passes.
	if stats.Reads+stats.Writes != 2*res.Operations {
		t.Fatalf("engine ops %d, march ops %d", stats.Reads+stats.Writes, 2*res.Operations)
	}
}

func TestEngineCapturesAndUnsucc(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	a := newRAM(t)
	// Stuck-at fault in word 5 (row 1, colsel 1, bit 0 -> col 1).
	if err := a.Inject(sram.CellAddr{Row: 1, Col: 1}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p, a, 4)
	var caps []Capture
	e.OnCapture = func(c Capture) { caps = append(caps, c) }
	stats, err := e.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Captures == 0 {
		t.Fatal("no pass-1 captures for stuck-at fault")
	}
	for _, c := range caps {
		if c.Addr != 5 {
			t.Fatalf("captured wrong address %d", c.Addr)
		}
	}
	// No TLB repair attached: pass 2 sees the same fault -> unsuccessful.
	if !stats.Unsucc {
		t.Fatal("unrepaired fault must flag Repair Unsuccessful")
	}
}

func TestPlaneFileRoundTrip(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	var andB, orB bytes.Buffer
	if err := p.WritePlanes(&andB, &orB); err != nil {
		t.Fatal(err)
	}
	if andB.Len() == 0 || orB.Len() == 0 {
		t.Fatal("empty plane files")
	}
	q, err := ReadPlanes("IFA-9", p.StateBits, &andB, &orB)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != len(p.Terms) {
		t.Fatalf("term count changed: %d -> %d", len(p.Terms), len(q.Terms))
	}
	// Exhaustive evaluation equivalence over all states and condition
	// combinations.
	for st := 0; st < p.NumStates; st++ {
		for c := uint64(0); c < 1<<NumConds; c++ {
			s1, n1 := p.Eval(st, c)
			s2, n2 := q.Eval(st, c)
			if s1 != s2 || n1 != n2 {
				t.Fatalf("state %d conds %04b: (%x,%d) vs (%x,%d)", st, c, s1, n1, s2, n2)
			}
		}
	}
}

func TestReadPlanesErrors(t *testing.T) {
	if _, err := ReadPlanes("x", 5, strings.NewReader("101\n"), strings.NewReader("")); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	// Wrong width.
	if _, err := ReadPlanes("x", 5, strings.NewReader("10\n"), strings.NewReader("1\n")); err == nil {
		t.Fatal("bad widths accepted")
	}
	// Bad character.
	and := strings.Repeat("z", 5+NumConds) + "\n"
	or := strings.Repeat("0", NumSigs+5) + "\n"
	if _, err := ReadPlanes("x", 5, strings.NewReader(and), strings.NewReader(or)); err == nil {
		t.Fatal("bad AND char accepted")
	}
	// Comments and blanks are skipped.
	andOK := "# comment\n\n" + strings.Repeat("-", 5+NumConds) + "\n"
	orOK := strings.Repeat("0", NumSigs+5) + "\n"
	if _, err := ReadPlanes("x", 5, strings.NewReader(andOK), strings.NewReader(orOK)); err != nil {
		t.Fatal(err)
	}
}

func TestRunCycleGuard(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p, newRAM(t), 4)
	if _, err := e.Run(10); err == nil {
		t.Fatal("tiny cycle budget should error, not hang")
	}
}

func TestSigAndCondNames(t *testing.T) {
	if SigName(SigRead) != "read" || SigName(SigUnsucc) != "unsucc" {
		t.Fatal("sig names wrong")
	}
	if SigName(99) != "sig99" {
		t.Fatal("fallback sig name wrong")
	}
	if CondName(CondTC) != "tc" || CondName(CondPass2) != "pass2" {
		t.Fatal("cond names wrong")
	}
}

// Property: for every state, Eval's next state never depends on the
// err condition (the engine's two-phase Mealy evaluation relies on
// this).
func TestQuickNextStateErrIndependent(t *testing.T) {
	p, err := Assemble(march.IFA13())
	if err != nil {
		t.Fatal(err)
	}
	f := func(stSel uint8, c uint8) bool {
		st := int(stSel) % p.NumStates
		conds := uint64(c) & (1<<NumConds - 1)
		_, n1 := p.Eval(st, conds&^(1<<CondErr))
		_, n2 := p.Eval(st, conds|1<<CondErr)
		return n1 == n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every reachable state has exactly one asserted next state
// under any condition combination (no state-bit clashes from
// overlapping terms).
func TestQuickDeterministicNextState(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	for st := 0; st < p.NumStates; st++ {
		for c := uint64(0); c < 1<<NumConds; c++ {
			// Count terms asserting state bits; ORing two different
			// next states would corrupt the machine.
			var nexts []int
			for _, tm := range p.Terms {
				in := uint64(st) | c<<uint(p.StateBits)
				if in&tm.Mask == tm.Val && tm.Out>>NumSigs != 0 {
					nexts = append(nexts, int(tm.Out>>NumSigs))
				}
			}
			if len(nexts) > 1 {
				for _, n := range nexts[1:] {
					if n != nexts[0] {
						t.Fatalf("state %d conds %04b has conflicting next states %v", st, c, nexts)
					}
				}
			}
		}
	}
}
