package bist

// Minimize performs two-level logic minimisation on the control
// program — the PLA-area optimisation every silicon compiler of the
// era ran before committing plane geometry:
//
//   - adjacency merging: two terms with identical outputs and masks
//     that differ in exactly one cared input bit collapse into one
//     term with that bit turned into a don't-care;
//   - coverage elimination: a term whose input cube is contained in
//     another term with identical outputs is dropped.
//
// The OR-plane semantics make the transformation exact: Eval is
// bit-identical for every (state, condition) input. Minimize returns
// a new Program; the receiver is unchanged.
func (p *Program) Minimize() *Program {
	terms := append([]Term(nil), p.Terms...)
	changed := true
	for changed {
		changed = false
		// Adjacency merging.
	merge:
		for i := 0; i < len(terms); i++ {
			for j := i + 1; j < len(terms); j++ {
				a, b := terms[i], terms[j]
				if a.Out != b.Out || a.Mask != b.Mask {
					continue
				}
				diff := a.Val ^ b.Val
				if diff == 0 || diff&(diff-1) != 0 {
					continue // identical handled by coverage; >1 bit: no merge
				}
				merged := Term{Mask: a.Mask &^ diff, Val: a.Val &^ diff, Out: a.Out}
				terms[i] = merged
				terms = append(terms[:j], terms[j+1:]...)
				changed = true
				break merge
			}
		}
		// Coverage elimination: drop a if some b (b != a) has b.Mask
		// subset of a.Mask, matches a on b's cared bits, and b's
		// outputs include a's.
	cover:
		for i := 0; i < len(terms); i++ {
			for j := 0; j < len(terms); j++ {
				if i == j {
					continue
				}
				a, b := terms[i], terms[j]
				if b.Mask&^a.Mask != 0 {
					continue // b cares about a bit a doesn't: not more general
				}
				if (a.Val^b.Val)&b.Mask != 0 {
					continue // disagree on b's cared bits
				}
				if a.Out&^b.Out != 0 {
					continue // b doesn't assert everything a does
				}
				if a.Mask == b.Mask && a.Val == b.Val && a.Out == b.Out && i < j {
					continue // exact duplicates: keep the first, drop the second
				}
				terms = append(terms[:i], terms[i+1:]...)
				changed = true
				break cover
			}
		}
	}
	return &Program{Name: p.Name, StateBits: p.StateBits, NumStates: p.NumStates, Terms: terms}
}

// Reencode returns the program with every state value s replaced by
// mapping[s] (a bijection on [0, 2^StateBits)). State assignment
// changes which product terms are single-bit adjacent, so a good
// re-encoding unlocks Minimize savings that the natural linear
// assignment hides.
func (p *Program) Reencode(mapping []int) *Program {
	stateMask := uint64(1)<<uint(p.StateBits) - 1
	out := &Program{Name: p.Name, StateBits: p.StateBits, NumStates: 1 << uint(p.StateBits)}
	for _, t := range p.Terms {
		nt := t
		// Remap the state field of the input cube only when the term
		// fully specifies it (the assembler always does).
		if t.Mask&stateMask == stateMask {
			old := t.Val & stateMask
			nt.Val = (t.Val &^ stateMask) | uint64(mapping[old])
		}
		next := t.Out >> NumSigs
		nt.Out = t.Out&(1<<NumSigs-1) | uint64(mapping[next])<<NumSigs
		out.Terms = append(out.Terms, nt)
	}
	return out
}

// GrayMapping returns the Gray-code bijection for n state bits —
// consecutive microprogram states end up one bit apart, the classic
// PLA-friendly state assignment. mapping[0] == 0, so the reset state
// is preserved.
func GrayMapping(stateBits int) []int {
	n := 1 << uint(stateBits)
	m := make([]int, n)
	for i := 0; i < n; i++ {
		m[i] = i ^ (i >> 1)
	}
	return m
}

// Equivalent exhaustively compares two programs over every state and
// condition combination.
func Equivalent(a, b *Program) bool {
	if a.StateBits != b.StateBits {
		return false
	}
	states := a.NumStates
	if b.NumStates > states {
		states = b.NumStates
	}
	for st := 0; st < states; st++ {
		for c := uint64(0); c < 1<<NumConds; c++ {
			s1, n1 := a.Eval(st, c)
			s2, n2 := b.Eval(st, c)
			if s1 != s2 || n1 != n2 {
				return false
			}
		}
	}
	return true
}
