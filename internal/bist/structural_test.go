package bist

import (
	"testing"

	"repro/internal/logicsim"
	"repro/internal/march"
	"repro/internal/sram"
)

// traceEntry is one recorded behavioural PLA cycle.
type traceEntry struct {
	state int
	conds uint64
	sigs  uint64
	next  int
}

// TestStructuralPLAEquivalence replays the full behavioural IFA-9
// test-and-repair run (on a faulty RAM, so the capture and unsucc
// paths are exercised) against the gate-level PLA and requires
// cycle-exact agreement of every control signal and state transition.
func TestStructuralPLAEquivalence(t *testing.T) {
	prog, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	a := sram.MustNew(sram.Config{Words: 16, BPW: 2, BPC: 2, SpareRows: 1})
	if err := a.Inject(sram.CellAddr{Row: 3, Col: 1}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog, a, 2)
	var trace []traceEntry
	e.OnCycle = func(state int, conds, sigs uint64, next int) {
		trace = append(trace, traceEntry{state, conds, sigs, next})
	}
	if _, err := e.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Build and reset the structural PLA.
	s := logicsim.New()
	sp := BuildStructuralPLA(s, prog, "trpla")
	if err := sp.Reset(); err != nil {
		t.Fatal(err)
	}
	sawCapture, sawUnsucc := false, false
	for i, te := range trace {
		st, err := sp.State()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if st != te.state {
			t.Fatalf("cycle %d: structural state %d, behavioural %d", i, st, te.state)
		}
		// The pass2 condition is internal structural state; verify it
		// matches the behavioural trace rather than driving it.
		wantPass2 := te.conds&(1<<CondPass2) != 0
		gotPass2 := s.Value(sp.Pass2Q) == logicsim.L1
		if wantPass2 != gotPass2 {
			t.Fatalf("cycle %d: pass2 mismatch (want %v)", i, wantPass2)
		}
		if err := sp.SetConds(te.conds); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		sigs, err := sp.ReadSigs()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if sigs != te.sigs {
			t.Fatalf("cycle %d state %d conds %04b: structural sigs %014b, behavioural %014b",
				i, te.state, te.conds, sigs, te.sigs)
		}
		if sigs&(1<<SigCapture) != 0 {
			sawCapture = true
		}
		if sigs&(1<<SigUnsucc) != 0 {
			sawUnsucc = true
		}
		if err := sp.Clock(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if !sawCapture || !sawUnsucc {
		t.Fatalf("trace did not exercise capture (%v) and unsucc (%v) paths", sawCapture, sawUnsucc)
	}
}

// TestStructuralMinimizedPLAEquivalence builds the gate-level PLA
// from the Gray-re-encoded, minimised program and checks its
// combinational outputs against Eval for every state and condition —
// the netlist the area optimisation would actually commit to silicon.
func TestStructuralMinimizedPLAEquivalence(t *testing.T) {
	base, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	prog := base.Reencode(GrayMapping(base.StateBits)).Minimize()
	s := logicsim.New()
	sp := BuildStructuralPLA(s, prog, "min")
	if err := sp.Reset(); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 1<<uint(prog.StateBits); st++ {
		for c := uint64(0); c < 1<<NumConds; c++ {
			// Drive the state register outputs directly (bypassing the
			// flops) and the condition inputs; pass2 is internal, so
			// restrict to pass2=0 combinations and drive its net too.
			s.SetBus(sp.StateQ, uint64(st))
			s.Set(sp.Pass2Q, logicsim.Bool(c&(1<<CondPass2) != 0))
			if err := sp.SetConds(c); err != nil {
				t.Fatal(err)
			}
			gotSigs, err := sp.ReadSigs()
			if err != nil {
				t.Fatalf("state %d conds %04b: %v", st, c, err)
			}
			wantSigs, _ := prog.Eval(st, c)
			if gotSigs != wantSigs {
				t.Fatalf("state %d conds %04b: structural %014b vs eval %014b",
					st, c, gotSigs, wantSigs)
			}
		}
	}
}

// TestStructuralCountersMatchBehavioural checks the gate-level ADDGEN
// (binary up/down counter) and DATAGEN (Johnson counter) against their
// behavioural models step by step.
func TestStructuralCountersMatchBehavioural(t *testing.T) {
	const n = 4 // 16 addresses
	s := logicsim.New()
	rstN := s.Net("rstN")
	cnt := s.UpDownCounter("addgen", n, rstN)
	s.Set(rstN, logicsim.L0)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s.Set(rstN, logicsim.L1)
	s.Set(cnt.En, logicsim.L1)
	s.Set(cnt.Up, logicsim.L1)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}

	ag := NewAddGen(16)
	ag.Load(true)
	for i := 0; i < 40; i++ {
		v, ok := s.ReadBus(cnt.Q)
		if !ok {
			t.Fatalf("step %d: counter unknown", i)
		}
		if int(v) != ag.Value() {
			t.Fatalf("step %d: structural %d behavioural %d", i, v, ag.Value())
		}
		// Terminal count matches.
		wantTC := logicsim.Bool(ag.Terminal())
		if s.Value(cnt.Carry) != wantTC {
			t.Fatalf("step %d: tc mismatch", i)
		}
		ag.Step()
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
	}
	// Downward.
	s.Set(cnt.Up, logicsim.L0)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	agv, _ := s.ReadBus(cnt.Q)
	down := NewAddGen(16)
	down.Load(false)
	// Align behavioural to structural current value.
	for down.Value() != int(agv) {
		down.Step()
	}
	for i := 0; i < 40; i++ {
		v, _ := s.ReadBus(cnt.Q)
		if int(v) != down.Value() {
			t.Fatalf("down step %d: structural %d behavioural %d", i, v, down.Value())
		}
		down.Step()
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
	}

	// Johnson counter vs DataGen backgrounds: the structural ring
	// visits each DataGen background (or its complement's partner)
	// in thermometer order over the first bpw+1 steps.
	const bpw = 4
	s2 := logicsim.New()
	r2 := s2.Net("rstN")
	j := s2.JohnsonCounter("datagen", bpw, r2)
	s2.Set(r2, logicsim.L0)
	if err := s2.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s2.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s2.Set(r2, logicsim.L1)
	s2.Set(j.En, logicsim.L1)
	if err := s2.Settle(); err != nil {
		t.Fatal(err)
	}
	dg := NewDataGen(bpw)
	dg.Load()
	for i := 0; i <= bpw; i++ {
		v, ok := s2.ReadBus(j.Q)
		if !ok {
			t.Fatal("johnson unknown")
		}
		if v != dg.Background() {
			t.Fatalf("background %d: structural %04b behavioural %04b", i, v, dg.Background())
		}
		dg.Step()
		if err := s2.ClockEdge(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStructuralComparator verifies the XOR/OR comparator netlist
// against DataGen.Compare.
func TestStructuralComparator(t *testing.T) {
	const bpw = 4
	s := logicsim.New()
	read := s.Bus("read", bpw)
	exp := s.Bus("exp", bpw)
	diffs := make([]int, bpw)
	for i := 0; i < bpw; i++ {
		diffs[i] = s.Net("d" + string(rune('0'+i)))
		s.Gate(logicsim.XOR, diffs[i], read[i], exp[i])
	}
	errNet := s.OrReduce("err", diffs)
	dg := NewDataGen(bpw)
	dg.Load()
	dg.Step() // background 0001
	for r := uint64(0); r < 16; r++ {
		s.SetBus(read, r)
		s.SetBus(exp, dg.Pattern(false))
		if err := s.Settle(); err != nil {
			t.Fatal(err)
		}
		want := logicsim.Bool(dg.Compare(r, false))
		if s.Value(errNet) != want {
			t.Fatalf("read %04b: structural %v behavioural %v", r, s.Value(errNet), want)
		}
	}
}
