package bist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/cerr"
	"repro/internal/march"
)

// Plane parse limits. Plane files are user inputs ("loaded from
// AND/OR plane files at runtime"); the caps bound adversarial files
// without excluding any program the assembler can produce.
const (
	maxStateBits    = 32      // NumStates <= 2^32 is already absurd
	maxPlaneRows    = 1 << 16 // product terms
	maxPlaneLineLen = 4096    // bytes per plane row
)

// Control signal output positions of the TRPLA's OR plane. The next-
// state bits follow these in the output vector.
const (
	SigRead     = iota // perform a read this cycle
	SigWrite           // perform a write this cycle
	SigInvert          // use the complemented background for the op
	SigCompare         // compare read data against the expectation
	SigAddrStep        // advance ADDGEN after the op
	SigAddrUp          // ADDGEN direction for this element (1 = up)
	SigAddrLoad        // load ADDGEN to the element's start address
	SigDataStep        // advance DATAGEN to the next background
	SigDataLoad        // reset DATAGEN to the first background
	SigDelay           // request the data-retention wait (processor handshake)
	SigCapture         // pass-1 read failed: store the faulty row in the TLB
	SigSetPass         // end of pass 1: raise the pass-2 flag in STREG
	SigDone            // self-test/repair sequence complete
	SigUnsucc          // pass-2 read failed: Repair Unsuccessful
	NumSigs
)

// SigName returns the mnemonic for a control signal index.
func SigName(s int) string {
	names := [...]string{"read", "write", "invert", "compare", "addrstep",
		"addrup", "addrload", "datastep", "dataload", "delay", "capture",
		"setpass", "done", "unsucc"}
	if s < 0 || s >= len(names) {
		return fmt.Sprintf("sig%d", s)
	}
	return names[s]
}

// Condition input positions, appended after the state bits in the
// PLA's input vector.
const (
	CondTC     = iota // ADDGEN terminal count
	CondBGDone        // DATAGEN on last background
	CondErr           // comparator mismatch (Mealy input)
	CondPass2         // STREG pass-2 flag
	NumConds
)

// CondName returns the mnemonic for a condition input index.
func CondName(c int) string {
	return [...]string{"tc", "bgdone", "err", "pass2"}[c]
}

// Term is one product term: a ternary match over the input vector
// (state bits then condition bits) and the set of outputs it asserts
// (control signals then next-state bits).
type Term struct {
	// Mask and Val encode the AND-plane row: input i participates when
	// Mask has bit i set, and must then equal the corresponding Val
	// bit. Unmasked inputs are don't-cares.
	Mask, Val uint64
	// Out is the OR-plane row over NumSigs + state-bit outputs.
	Out uint64
}

// Program is a complete TRPLA control program.
type Program struct {
	Name      string
	StateBits int
	NumStates int
	Terms     []Term
}

// numInputs returns the AND-plane input width.
func (p *Program) numInputs() int { return p.StateBits + NumConds }

// numOutputs returns the OR-plane output width.
func (p *Program) numOutputs() int { return NumSigs + p.StateBits }

// Eval evaluates the PLA: given the current state and condition bits,
// it ORs the outputs of all matching product terms and returns the
// control-signal bitset and the next state.
func (p *Program) Eval(state int, conds uint64) (sigs uint64, next int) {
	in := uint64(state) | conds<<uint(p.StateBits)
	var out uint64
	for _, t := range p.Terms {
		if in&t.Mask == t.Val {
			out |= t.Out
		}
	}
	sigs = out & (1<<NumSigs - 1)
	next = int(out >> NumSigs)
	return sigs, next
}

// stateBitsFor returns the number of flip-flops needed for n states.
func stateBitsFor(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// Assemble compiles a march test into a TRPLA control program. The
// resulting state machine runs the whole test once per background,
// then — via the pass-2 flag — repeats the entire sequence a second
// time for the test-and-repair flow: pass-1 read failures assert
// capture, pass-2 failures assert unsucc, exactly as the paper's
// combined test and repair controller does.
func Assemble(t march.Test) (*Program, error) {
	if len(t.Elements) == 0 {
		return nil, cerr.New(cerr.CodeMarchParse, "bist: empty march test")
	}
	type opRef struct{ elem, op int }
	// State layout:
	//  0            INIT   (dataload, addrload for element 0)
	//  elemInit[i]  per-element init (addrload, optional delay)
	//  opState[i][j] one state per op
	//  bgState      background step / pass management
	//  doneState    terminal
	// Element 0's init is merged into INIT.
	nStates := 1 // INIT
	elemInit := make([]int, len(t.Elements))
	opState := make([][]int, len(t.Elements))
	for i, e := range t.Elements {
		if len(e.Ops) == 0 {
			return nil, cerr.New(cerr.CodeMarchParse, "bist: element %d has no ops", i)
		}
		if i == 0 {
			elemInit[i] = 0
		} else {
			elemInit[i] = nStates
			nStates++
		}
		opState[i] = make([]int, len(e.Ops))
		for j := range e.Ops {
			opState[i][j] = nStates
			nStates++
		}
	}
	bgState := nStates
	nStates++
	doneState := nStates
	nStates++

	p := &Program{Name: t.Name, NumStates: nStates}
	p.StateBits = stateBitsFor(nStates)
	if p.numInputs() > 64 || p.numOutputs() > 64 {
		return nil, cerr.New(cerr.CodeInvalidParams,
			"bist: program too wide (%d inputs, %d outputs; 64 max)", p.numInputs(), p.numOutputs())
	}

	sBits := uint(p.StateBits)
	stateMask := uint64(1)<<sBits - 1
	// term helpers -------------------------------------------------
	addTerm := func(state int, condMask, condVal uint64, sigs uint64, next int) {
		t := Term{
			Mask: stateMask | condMask<<sBits,
			Val:  uint64(state) | condVal<<sBits,
			Out:  sigs | uint64(next)<<NumSigs,
		}
		p.Terms = append(p.Terms, t)
	}
	bit := func(sig int) uint64 { return 1 << uint(sig) }
	condBit := func(c int) uint64 { return 1 << uint(c) }

	dirUp := func(e march.Element) bool { return e.Order != march.Descending }

	elemInitSigs := func(i int) uint64 {
		e := t.Elements[i]
		s := bit(SigAddrLoad)
		if dirUp(e) {
			s |= bit(SigAddrUp)
		}
		if e.Delay {
			s |= bit(SigDelay)
		}
		return s
	}

	// INIT: reset DATAGEN and set up element 0.
	addTerm(0, 0, 0, bit(SigDataLoad)|elemInitSigs(0), opState[0][0])

	for i, e := range t.Elements {
		if i > 0 {
			addTerm(elemInit[i], 0, 0, elemInitSigs(i), opState[i][0])
		}
		up := dirUp(e)
		for j, op := range e.Ops {
			var sigs uint64
			if op.Kind == march.Write {
				sigs |= bit(SigWrite)
			} else {
				sigs |= bit(SigRead) | bit(SigCompare)
			}
			if op.Inverted {
				sigs |= bit(SigInvert)
			}
			if up {
				sigs |= bit(SigAddrUp)
			}
			st := opState[i][j]
			last := j == len(e.Ops)-1
			if !last {
				addTerm(st, 0, 0, sigs, opState[i][j+1])
			} else {
				// Advance address; at terminal count fall through to
				// the next element (or background step). The datapath
				// signals go in a tc-independent term and only the
				// next-state bits are tc-qualified: in the structural
				// PLA the terminal count is itself a function of the
				// datapath outputs (counter direction), and asserting
				// the same signal from two tc-qualified terms would
				// glitch on every tc transition — a combinational
				// oscillator. Keeping control outputs free of tc
				// breaks that loop; the OR-plane semantics are
				// unchanged.
				sigs |= bit(SigAddrStep)
				nextElem := bgState
				if i+1 < len(t.Elements) {
					nextElem = elemInit[i+1]
				}
				addTerm(st, 0, 0, sigs, 0)
				addTerm(st, condBit(CondTC), 0, 0, opState[i][0])
				addTerm(st, condBit(CondTC), condBit(CondTC), 0, nextElem)
			}
			if op.Kind == march.Read {
				// Mealy capture/unsuccessful terms, qualified by err
				// and the pass flag. They assert no next-state bits, so
				// composing them with the op term is safe.
				addTerm(st, condBit(CondErr)|condBit(CondPass2), condBit(CondErr), bit(SigCapture), 0)
				addTerm(st, condBit(CondErr)|condBit(CondPass2), condBit(CondErr)|condBit(CondPass2), bit(SigUnsucc), 0)
			}
		}
	}
	// Background management.
	addTerm(bgState, condBit(CondBGDone), 0, bit(SigDataStep)|elemInitSigs(0), opState[0][0])
	addTerm(bgState, condBit(CondBGDone)|condBit(CondPass2), condBit(CondBGDone),
		bit(SigSetPass)|bit(SigDataLoad)|elemInitSigs(0), opState[0][0])
	addTerm(bgState, condBit(CondBGDone)|condBit(CondPass2), condBit(CondBGDone)|condBit(CondPass2),
		bit(SigDone), doneState)
	// DONE self-loop.
	addTerm(doneState, 0, 0, bit(SigDone), doneState)
	return p, nil
}

// --- plane file serialisation -----------------------------------

// WritePlanes renders the program as the two text plane files the
// paper says BISRAMGEN reads at runtime: each AND-plane line has one
// character per input (1, 0, or - for don't-care); each OR-plane line
// has one character per output (1 or 0, or - treated as 0).
func (p *Program) WritePlanes(andPlane, orPlane io.Writer) error {
	for _, t := range p.Terms {
		var row strings.Builder
		for i := 0; i < p.numInputs(); i++ {
			b := uint64(1) << uint(i)
			switch {
			case t.Mask&b == 0:
				row.WriteByte('-')
			case t.Val&b != 0:
				row.WriteByte('1')
			default:
				row.WriteByte('0')
			}
		}
		if _, err := fmt.Fprintln(andPlane, row.String()); err != nil {
			return err
		}
		row.Reset()
		for o := 0; o < p.numOutputs(); o++ {
			if t.Out&(1<<uint(o)) != 0 {
				row.WriteByte('1')
			} else {
				row.WriteByte('0')
			}
		}
		if _, err := fmt.Fprintln(orPlane, row.String()); err != nil {
			return err
		}
	}
	return nil
}

// ReadPlanes parses a pair of plane files into a Program. The caller
// supplies the state-bit count (the plane geometry fixes everything
// else). Blank lines and lines starting with '#' are ignored.
//
// Plane files are user-controllable input; every failure — geometry
// mismatch, bad characters, oversized files, out-of-range state-bit
// counts — is a typed cerr.ErrPlaneParse, and parsing never panics
// (see FuzzPLAPlanes and the faultcampaign suite).
func ReadPlanes(name string, stateBits int, andPlane, orPlane io.Reader) (*Program, error) {
	if stateBits < 1 || stateBits > maxStateBits {
		return nil, cerr.New(cerr.CodePlaneParse,
			"bist: state bits %d outside [1, %d]", stateBits, maxStateBits)
	}
	andRows, err := planeRows(andPlane)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodePlaneParse, err, "bist: AND plane")
	}
	orRows, err := planeRows(orPlane)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodePlaneParse, err, "bist: OR plane")
	}
	if len(andRows) != len(orRows) {
		return nil, cerr.New(cerr.CodePlaneParse,
			"bist: plane row mismatch: %d AND vs %d OR", len(andRows), len(orRows))
	}
	if len(andRows) == 0 {
		return nil, cerr.New(cerr.CodePlaneParse, "bist: empty planes")
	}
	p := &Program{Name: name, StateBits: stateBits}
	nin, nout := p.numInputs(), p.numOutputs()
	maxState := 0
	for r := range andRows {
		if len(andRows[r]) != nin {
			return nil, cerr.New(cerr.CodePlaneParse,
				"bist: AND row %d has %d columns, want %d", r, len(andRows[r]), nin)
		}
		if len(orRows[r]) != nout {
			return nil, cerr.New(cerr.CodePlaneParse,
				"bist: OR row %d has %d columns, want %d", r, len(orRows[r]), nout)
		}
		var t Term
		for i, ch := range andRows[r] {
			switch ch {
			case '-':
			case '1':
				t.Mask |= 1 << uint(i)
				t.Val |= 1 << uint(i)
			case '0':
				t.Mask |= 1 << uint(i)
			default:
				return nil, cerr.New(cerr.CodePlaneParse, "bist: AND row %d: bad char %q", r, ch)
			}
		}
		for o, ch := range orRows[r] {
			switch ch {
			case '1':
				t.Out |= 1 << uint(o)
			case '0', '-':
			default:
				return nil, cerr.New(cerr.CodePlaneParse, "bist: OR row %d: bad char %q", r, ch)
			}
		}
		if ns := int(t.Out >> NumSigs); ns > maxState {
			maxState = ns
		}
		p.Terms = append(p.Terms, t)
	}
	if maxState >= 1<<uint(stateBits) {
		return nil, cerr.New(cerr.CodePlaneParse,
			"bist: OR plane encodes state %d, beyond %d state bits", maxState, stateBits)
	}
	p.NumStates = maxState + 1
	return p, nil
}

func planeRows(r io.Reader) ([]string, error) {
	var rows []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), maxPlaneLineLen)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(rows) >= maxPlaneRows {
			return nil, cerr.New(cerr.CodePlaneParse, "plane exceeds %d rows", maxPlaneRows)
		}
		rows = append(rows, line)
	}
	return rows, sc.Err()
}
