package bist

import (
	"context"

	"repro/internal/cerr"
	"repro/internal/march"
)

// StReg is the state register block: it holds the TRPLA state bits,
// the pass-2 flag and the sticky status outputs (done, repair
// unsuccessful).
type StReg struct {
	State  int
	Pass2  bool
	Done   bool
	Unsucc bool
}

// Reset clears the register to the initial test state.
func (s *StReg) Reset() { *s = StReg{} }

// Capture is a pass-1 failure notification: the word address whose
// read miscompared, to be stored (as a row) in the TLB. Got and Want
// carry the miscompared data, from which the repair controller's
// column-failure diagnosis derives the failing bit positions.
type Capture struct {
	Addr int
	BG   uint64
	Got  uint64
	Want uint64
}

// RunStats summarises an Engine run.
type RunStats struct {
	Cycles      int64
	Reads       int64
	Writes      int64
	Delays      int64
	Captures    int  // pass-1 failures reported
	Pass2Errors int  // pass-2 miscompares
	Unsucc      bool // repair-unsuccessful status line
}

// Engine executes a TRPLA control program against a device under
// test, emulating the clocked interaction of TRPLA, ADDGEN, DATAGEN
// and STREG. Pass-1 failures are delivered to OnCapture (the BISR TLB
// store port); the pass-2 flag transition is delivered to OnPass2 so
// the repair wrapper can switch from store mode to map mode.
type Engine struct {
	Prog *Program
	DUT  march.DUT
	BPW  int

	OnCapture func(Capture)
	OnPass2   func()
	// OnCycle, when set, receives the per-cycle PLA trace
	// (pre-edge state, condition bits including the final err, the
	// asserted control signals, and the next state). The structural
	// equivalence tests replay this trace against the gate-level PLA.
	OnCycle func(state int, conds, sigs uint64, next int)

	addgen  *AddGen
	datagen *DataGen
	streg   StReg
}

// NewEngine wires a program to a DUT.
func NewEngine(p *Program, dut march.DUT, bpw int) *Engine {
	return &Engine{
		Prog: p, DUT: dut, BPW: bpw,
		addgen:  NewAddGen(dut.Words()),
		datagen: NewDataGen(bpw),
	}
}

// conds packs the PLA condition inputs.
func (e *Engine) conds(err bool) uint64 {
	var c uint64
	if e.addgen.Terminal() {
		c |= 1 << CondTC
	}
	if e.datagen.Done() {
		c |= 1 << CondBGDone
	}
	if err {
		c |= 1 << CondErr
	}
	if e.streg.Pass2 {
		c |= 1 << CondPass2
	}
	return c
}

// Run executes the program until the done state or until maxCycles
// elapses (guarding against a malformed microprogram). It returns the
// run statistics.
func (e *Engine) Run(maxCycles int64) (*RunStats, error) {
	return e.RunCtx(context.Background(), maxCycles)
}

// ctxCheckInterval is how many emulated cycles elapse between context
// deadline checks in RunCtx: frequent enough that a 1 ms deadline is
// honoured promptly, sparse enough that ctx.Err is off the hot path.
const ctxCheckInterval = 1024

// RunCtx is Run with cooperative cancellation: the context deadline is
// checked every ctxCheckInterval cycles, and on expiry the engine
// returns the partial run statistics together with a typed
// cerr.ErrBudgetExceeded.
func (e *Engine) RunCtx(ctx context.Context, maxCycles int64) (*RunStats, error) {
	if e.BPW < 1 || e.BPW > 64 {
		return nil, cerr.New(cerr.CodeInvalidParams, "bist: bpw %d outside model range [1, 64]", e.BPW)
	}
	if e.Prog == nil || len(e.Prog.Terms) == 0 {
		return nil, cerr.New(cerr.CodePlaneParse, "bist: empty control program")
	}
	e.streg.Reset()
	stats := &RunStats{}
	sigs := func(s uint64, bit int) bool { return s&(1<<uint(bit)) != 0 }
	for stats.Cycles = 0; stats.Cycles < maxCycles; stats.Cycles++ {
		if stats.Cycles%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return stats, cerr.Wrap(cerr.CodeBudgetExceeded, err,
					"bist: run cancelled after %d cycles", stats.Cycles)
			}
		}
		// Phase 1: Mealy evaluation with err=0 to obtain the datapath
		// controls (none of which depend on err).
		out, next := e.Prog.Eval(e.streg.State, e.conds(false))
		errFlag := false
		var failAddr int
		var failBG, failGot, failWant uint64
		if sigs(out, SigDelay) {
			e.DUT.Wait()
			stats.Delays++
		}
		switch {
		case sigs(out, SigRead):
			addr := e.addgen.Value()
			got := e.DUT.Read(addr)
			stats.Reads++
			if sigs(out, SigCompare) && e.datagen.Compare(got, sigs(out, SigInvert)) {
				errFlag = true
				failAddr = addr
				failBG = e.datagen.Background()
				failGot = got
				failWant = e.datagen.Pattern(sigs(out, SigInvert))
			}
		case sigs(out, SigWrite):
			e.DUT.Write(e.addgen.Value(), e.datagen.Pattern(sigs(out, SigInvert)))
			stats.Writes++
		}
		// Phase 2: re-evaluate with the comparator result to pick up
		// the err-qualified capture/unsuccessful terms.
		out2, next2 := e.Prog.Eval(e.streg.State, e.conds(errFlag))
		if next2 != next {
			return stats, cerr.New(cerr.CodePlaneParse,
				"bist: next state depends on err (state %d)", e.streg.State)
		}
		if sigs(out2, SigCapture) {
			stats.Captures++
			if e.OnCapture != nil {
				e.OnCapture(Capture{Addr: failAddr, BG: failBG, Got: failGot, Want: failWant})
			}
		}
		if sigs(out2, SigUnsucc) {
			stats.Pass2Errors++
			e.streg.Unsucc = true
		}
		if e.OnCycle != nil {
			e.OnCycle(e.streg.State, e.conds(errFlag), out2, next)
		}
		// Datapath sequencing after the op.
		if sigs(out, SigAddrLoad) {
			e.addgen.Load(sigs(out, SigAddrUp))
		} else if sigs(out, SigAddrStep) {
			e.addgen.Step()
		}
		if sigs(out, SigDataLoad) {
			e.datagen.Load()
		} else if sigs(out, SigDataStep) {
			e.datagen.Step()
		}
		if sigs(out, SigSetPass) && !e.streg.Pass2 {
			e.streg.Pass2 = true
			if e.OnPass2 != nil {
				e.OnPass2()
			}
		}
		if sigs(out, SigDone) {
			e.streg.Done = true
			stats.Unsucc = e.streg.Unsucc
			return stats, nil
		}
		e.streg.State = next
	}
	return stats, cerr.New(cerr.CodeBudgetExceeded,
		"bist: program did not finish within %d cycles", maxCycles)
}
