package bist

import (
	"testing"

	"repro/internal/march"
	"repro/internal/sram"
)

func TestMinimizePreservesSemantics(t *testing.T) {
	for _, test := range march.AllTests() {
		p, err := Assemble(test)
		if err != nil {
			t.Fatal(err)
		}
		m := p.Minimize()
		if !Equivalent(p, m) {
			t.Fatalf("%s: minimised program is not equivalent", test.Name)
		}
		if len(m.Terms) > len(p.Terms) {
			t.Fatalf("%s: minimisation grew the plane: %d -> %d", test.Name, len(p.Terms), len(m.Terms))
		}
	}
}

func TestMinimizeMergesAdjacentTerms(t *testing.T) {
	// Hand-built program: two terms identical except one cared bit,
	// same outputs -> one term with a don't-care.
	p := &Program{StateBits: 2, NumStates: 4, Terms: []Term{
		{Mask: 0b111, Val: 0b001, Out: 0b1},
		{Mask: 0b111, Val: 0b101, Out: 0b1},
	}}
	m := p.Minimize()
	if len(m.Terms) != 1 {
		t.Fatalf("terms %d, want 1", len(m.Terms))
	}
	if m.Terms[0].Mask != 0b011 || m.Terms[0].Val != 0b001 {
		t.Fatalf("merged term %+v", m.Terms[0])
	}
	if !Equivalent(p, m) {
		t.Fatal("merge broke semantics")
	}
}

func TestMinimizeDropsCoveredAndDuplicateTerms(t *testing.T) {
	p := &Program{StateBits: 2, NumStates: 4, Terms: []Term{
		{Mask: 0b011, Val: 0b001, Out: 0b1}, // general
		{Mask: 0b111, Val: 0b101, Out: 0b1}, // covered by the general term
		{Mask: 0b011, Val: 0b001, Out: 0b1}, // exact duplicate
	}}
	m := p.Minimize()
	if len(m.Terms) != 1 {
		t.Fatalf("terms %d, want 1: %+v", len(m.Terms), m.Terms)
	}
	if !Equivalent(p, m) {
		t.Fatal("coverage elimination broke semantics")
	}
}

func TestMinimizeKeepsDistinctOutputsApart(t *testing.T) {
	p := &Program{StateBits: 2, NumStates: 4, Terms: []Term{
		{Mask: 0b111, Val: 0b001, Out: 0b01},
		{Mask: 0b111, Val: 0b101, Out: 0b10}, // different outputs: no merge
	}}
	m := p.Minimize()
	if len(m.Terms) != 2 {
		t.Fatalf("terms %d, want 2", len(m.Terms))
	}
	if !Equivalent(p, m) {
		t.Fatal("semantics changed")
	}
}

func TestGrayReencodingUnlocksMinimization(t *testing.T) {
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	gray := p.Reencode(GrayMapping(p.StateBits))
	min := gray.Minimize()
	if !(len(min.Terms) < len(p.Terms)) {
		t.Fatalf("Gray re-encoding should unlock merges: %d -> %d", len(p.Terms), len(min.Terms))
	}
	t.Logf("IFA-9 plane: %d terms linear, %d after Gray+minimise", len(p.Terms), len(min.Terms))
	// Gray + minimised program must still run the full test-and-repair
	// correctly: same captures and verdict as the linear program on
	// the same faulty RAM.
	build := func() *sram.Array {
		a := sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 2})
		if err := a.Inject(sram.CellAddr{Row: 3, Col: 5}, sram.Fault{Kind: sram.SA1}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	run := func(prog *Program) *RunStats {
		e := NewEngine(prog, build(), 4)
		st, err := e.Run(5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	lin := run(p)
	gm := run(min)
	if lin.Captures != gm.Captures || lin.Unsucc != gm.Unsucc ||
		lin.Reads != gm.Reads || lin.Writes != gm.Writes {
		t.Fatalf("gray+minimised engine diverges: %+v vs %+v", lin, gm)
	}
	// Mapping sanity: bijection fixing 0.
	m := GrayMapping(5)
	if m[0] != 0 {
		t.Fatal("reset state moved")
	}
	seen := map[int]bool{}
	for _, v := range m {
		if seen[v] {
			t.Fatal("mapping not a bijection")
		}
		seen[v] = true
	}
}

func TestMinimizeIFA9PlaneAlreadyIrredundant(t *testing.T) {
	// The assembler's linear state assignment produces a plane with no
	// single-bit-adjacent term pairs, so the minimiser finds nothing
	// to merge — evidence the generated microprogram is already
	// irredundant under two-level minimisation. (Savings would require
	// re-encoding the state assignment, a different optimisation.)
	p, err := Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	m := p.Minimize()
	if len(m.Terms) > len(p.Terms) {
		t.Fatalf("minimisation grew the plane: %d -> %d", len(p.Terms), len(m.Terms))
	}
	if !Equivalent(p, m) {
		t.Fatal("equivalence broken")
	}
	t.Logf("IFA-9 plane: %d -> %d product terms", len(p.Terms), len(m.Terms))
}
