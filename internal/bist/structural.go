package bist

import (
	"fmt"

	"repro/internal/logicsim"
)

// StructuralPLA is the gate-level realisation of a TRPLA program:
// the state register (STREG flip-flops plus the pass-2 flag) and the
// two PLA planes. In silicon the planes are pseudo-NMOS NOR-NOR
// arrays; the netlist here uses the logically equivalent AND-OR form
// (a NOR of complemented literals is the same product term).
type StructuralPLA struct {
	Sim *logicsim.Sim

	// Condition inputs, driven externally each cycle.
	TC, BGDone, Err int
	// RstN is the active-low reset for the state register.
	RstN int
	// Sigs are the control outputs, indexed by Sig* constants.
	Sigs []int
	// StateQ is the state register output bus (LSB first).
	StateQ []int
	// Pass2Q is the registered pass-2 flag.
	Pass2Q int
}

// BuildStructuralPLA elaborates the program into gates on the given
// simulator.
func BuildStructuralPLA(s *logicsim.Sim, p *Program, prefix string) *StructuralPLA {
	sp := &StructuralPLA{Sim: s}
	sp.TC = s.Net(prefix + ".tc")
	sp.BGDone = s.Net(prefix + ".bgdone")
	sp.Err = s.Net(prefix + ".err")
	sp.RstN = s.Net(prefix + ".rstN")

	// State register.
	sp.StateQ = s.Bus(prefix+".state", p.StateBits)

	// Pass-2 flag: set-only until reset. d = q OR setpass.
	sp.Pass2Q = s.Net(prefix + ".pass2")

	// Input literal rails: state bits then conditions, with
	// complements.
	inputs := make([]int, 0, p.numInputs())
	inputs = append(inputs, sp.StateQ...)
	inputs = append(inputs, sp.TC, sp.BGDone, sp.Err, sp.Pass2Q)
	nots := make([]int, len(inputs))
	for i, in := range inputs {
		nots[i] = s.Net(fmt.Sprintf("%s.nin%d", prefix, i))
		s.Gate(logicsim.NOT, nots[i], in)
	}

	// AND plane: one product-term gate per row.
	termNets := make([]int, len(p.Terms))
	for ti, t := range p.Terms {
		var lits []int
		for i := 0; i < p.numInputs(); i++ {
			b := uint64(1) << uint(i)
			if t.Mask&b == 0 {
				continue
			}
			if t.Val&b != 0 {
				lits = append(lits, inputs[i])
			} else {
				lits = append(lits, nots[i])
			}
		}
		termNets[ti] = s.Net(fmt.Sprintf("%s.term%d", prefix, ti))
		if len(lits) == 0 {
			// Unconditional term: tie high via NOT(x AND NOT x) style;
			// simpler: OR of a rail and its complement.
			r := s.Net(fmt.Sprintf("%s.t1_%d", prefix, ti))
			s.Gate(OR2(), r, inputs[0], nots[0])
			s.Gate(logicsim.BUF, termNets[ti], r)
			continue
		}
		s.Gate(logicsim.AND, termNets[ti], lits...)
	}

	// OR plane: one sum gate per output column.
	outCols := p.numOutputs()
	outNets := make([]int, outCols)
	zero := s.Net(prefix + ".zero")
	s.Gate(logicsim.AND, zero, inputs[0], nots[0]) // constant 0
	for o := 0; o < outCols; o++ {
		var srcs []int
		for ti, t := range p.Terms {
			if t.Out&(1<<uint(o)) != 0 {
				srcs = append(srcs, termNets[ti])
			}
		}
		outNets[o] = s.Net(fmt.Sprintf("%s.out%d", prefix, o))
		if len(srcs) == 0 {
			s.Gate(logicsim.BUF, outNets[o], zero)
			continue
		}
		s.Gate(logicsim.OR, outNets[o], srcs...)
	}
	sp.Sigs = outNets[:NumSigs]

	// Next-state feedback into the state register.
	for b := 0; b < p.StateBits; b++ {
		s.DFF(outNets[NumSigs+b], sp.StateQ[b], sp.RstN)
	}
	// Pass-2 set-only flop.
	d := s.Net(prefix + ".pass2d")
	s.Gate(logicsim.OR, d, sp.Pass2Q, outNets[SigSetPass])
	s.DFF(d, sp.Pass2Q, sp.RstN)
	return sp
}

// OR2 returns the OR kind (helper to keep the constant-one idiom
// readable above).
func OR2() logicsim.Kind { return logicsim.OR }

// Reset drives and releases the asynchronous reset, leaving the PLA in
// state 0 with the pass-2 flag clear.
func (sp *StructuralPLA) Reset() error {
	s := sp.Sim
	s.Set(sp.RstN, logicsim.L0)
	s.Set(sp.TC, logicsim.L0)
	s.Set(sp.BGDone, logicsim.L0)
	s.Set(sp.Err, logicsim.L0)
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.ApplyResets(); err != nil {
		return err
	}
	s.Set(sp.RstN, logicsim.L1)
	return s.Settle()
}

// SetConds drives the condition inputs and settles the combinational
// planes.
func (sp *StructuralPLA) SetConds(conds uint64) error {
	s := sp.Sim
	s.Set(sp.TC, logicsim.Bool(conds&(1<<CondTC) != 0))
	s.Set(sp.BGDone, logicsim.Bool(conds&(1<<CondBGDone) != 0))
	s.Set(sp.Err, logicsim.Bool(conds&(1<<CondErr) != 0))
	// Pass2 is internal state; callers cannot drive it.
	return s.Settle()
}

// ReadSigs returns the current control-signal bitset.
func (sp *StructuralPLA) ReadSigs() (uint64, error) {
	var out uint64
	for i, n := range sp.Sigs {
		switch sp.Sim.Value(n) {
		case logicsim.L1:
			out |= 1 << uint(i)
		case logicsim.L0:
		default:
			return 0, fmt.Errorf("bist: signal %s is %v", SigName(i), sp.Sim.Value(n))
		}
	}
	return out, nil
}

// State returns the registered state value.
func (sp *StructuralPLA) State() (int, error) {
	v, ok := sp.Sim.ReadBus(sp.StateQ)
	if !ok {
		return 0, fmt.Errorf("bist: state register holds unknowns")
	}
	return int(v), nil
}

// Clock advances the state register one cycle.
func (sp *StructuralPLA) Clock() error { return sp.Sim.ClockEdge() }
