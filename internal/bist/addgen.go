// Package bist implements BISRAMGEN's built-in self-test circuitry:
// the binary up/down test address generator (ADDGEN), the Johnson-
// counter test data background generator with its XOR/OR comparator
// (DATAGEN), the state register (STREG), and the microprogrammed test
// and repair controller PLA (TRPLA) whose control code is assembled
// from a march test and loaded from AND/OR plane files at runtime.
//
// Each block exists twice: a behavioural model (this file and
// datagen.go) and a structural gate-level netlist (structural.go)
// simulated with internal/logicsim; the test suite proves them
// equivalent cycle by cycle.
package bist

// AddGen is the behavioural test address generator: a binary up/down
// counter over the word address space.
type AddGen struct {
	words int
	v     int
	up    bool
}

// NewAddGen returns a generator over addresses [0, words). The
// constructor is total: a non-positive word count is clamped to a
// single-word address space (word counts are validated at the sram /
// compiler boundary; the clamp keeps internal wiring panic-free on
// degenerate DUTs).
func NewAddGen(words int) *AddGen {
	if words <= 0 {
		words = 1
	}
	return &AddGen{words: words, up: true}
}

// Load resets the counter to the starting address for the given
// direction: 0 when counting up, words-1 when counting down.
func (g *AddGen) Load(up bool) {
	g.up = up
	if up {
		g.v = 0
	} else {
		g.v = g.words - 1
	}
}

// Value returns the current address.
func (g *AddGen) Value() int { return g.v }

// Terminal reports whether the counter is at the last address of its
// current direction (the PLA's tc condition input).
func (g *AddGen) Terminal() bool {
	if g.up {
		return g.v == g.words-1
	}
	return g.v == 0
}

// Step advances one address in the current direction, wrapping modulo
// the address space as the hardware counter does.
func (g *AddGen) Step() {
	if g.up {
		g.v++
		if g.v == g.words {
			g.v = 0
		}
	} else {
		g.v--
		if g.v < 0 {
			g.v = g.words - 1
		}
	}
}
