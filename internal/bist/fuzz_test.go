package bist

import (
	"strings"
	"testing"

	"repro/internal/cerr"
)

// FuzzPLAPlanes feeds arbitrary plane files and state-bit counts
// through the TRPLA control-code loader. Contract: never panics,
// rejections are typed cerr errors, and an accepted program has
// self-consistent geometry.
func FuzzPLAPlanes(f *testing.F) {
	f.Add(4, "----------\n", "0000000000000\n")
	f.Add(4, "", "")
	f.Add(0, "-\n", "0\n")
	f.Add(64, "-\n", "0\n")
	f.Add(2, "--------\n--------\n", "--------\n")
	f.Add(4, "# comment\n--------\n", "000000000\n")
	f.Add(4, "\x00\xff\n", "\x01\x02\n")
	f.Add(2, strings.Repeat("--\n", 100), strings.Repeat("00\n", 100))
	f.Add(3, strings.Repeat("-", 100_000)+"\n", "000\n")
	f.Fuzz(func(t *testing.T, stateBits int, andPlane, orPlane string) {
		prog, err := ReadPlanes("fuzz", stateBits, strings.NewReader(andPlane), strings.NewReader(orPlane))
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped plane error: %v", err)
			}
			return
		}
		if prog == nil {
			t.Fatal("nil program with nil error")
		}
		if prog.StateBits != stateBits {
			t.Fatalf("state bits mangled: %d != %d", prog.StateBits, stateBits)
		}
		if len(prog.Terms) == 0 {
			t.Fatal("accepted empty program")
		}
		if prog.NumStates < 1 || prog.NumStates > 1<<uint(stateBits) {
			t.Fatalf("inconsistent state count %d for %d bits", prog.NumStates, stateBits)
		}
	})
}
