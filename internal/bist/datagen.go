package bist

import "repro/internal/march"

// DataGen is the behavioural test data background generator: a
// Johnson counter providing bpw+1 distinct backgrounds for a bpw-bit
// word, plus the exclusive-OR comparator that checks read data against
// its expected value. The Johnson organisation needs less hardware
// than a log2(bpw)+1 pattern ROM at the price of more backgrounds —
// the trade the paper argues for.
type DataGen struct {
	bpw  int
	bgs  []uint64
	idx  int
	mask uint64
}

// NewDataGen returns a generator for bpw-bit words.
func NewDataGen(bpw int) *DataGen {
	mask := ^uint64(0)
	if bpw < 64 {
		mask = 1<<uint(bpw) - 1
	}
	return &DataGen{bpw: bpw, bgs: march.JohnsonBackgrounds(bpw), mask: mask}
}

// Load resets to the first (all-zero) background.
func (g *DataGen) Load() { g.idx = 0 }

// Step advances to the next background, wrapping like the hardware
// ring.
func (g *DataGen) Step() { g.idx = (g.idx + 1) % len(g.bgs) }

// Background returns the current background pattern.
func (g *DataGen) Background() uint64 { return g.bgs[g.idx] }

// Done reports whether the current background is the last one (the
// PLA's bgdone condition input).
func (g *DataGen) Done() bool { return g.idx == len(g.bgs)-1 }

// Pattern returns the write/expect data for the current background,
// complemented when inverted.
func (g *DataGen) Pattern(inverted bool) uint64 {
	if inverted {
		return ^g.bgs[g.idx] & g.mask
	}
	return g.bgs[g.idx]
}

// Compare implements the XOR-tree/OR-gate comparator: it reports a
// mismatch between the read word and the expected pattern.
func (g *DataGen) Compare(read uint64, inverted bool) bool {
	return (read^g.Pattern(inverted))&g.mask != 0
}

// Backgrounds returns the full background list (for reporting).
func (g *DataGen) Backgrounds() []uint64 { return append([]uint64(nil), g.bgs...) }
