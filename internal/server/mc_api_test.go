package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/jobs"
	"repro/internal/sweep"
)

// TestSweepMCOverHTTP drives the statistical-yield axis end to end
// through the public API: an MC sweep compiles once, every results
// row carries a seeded MC block, and resubmitting the identical spec
// reproduces those blocks bit-for-bit from the artifact cache.
func TestSweepMCOverHTTP(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	cl := sweep.NewClient(ts.URL)
	spec := sweep.Spec{
		Base: canon.Request{Words: 256, BPW: 8, BPC: 4, Spares: 4, MCSeed: 9},
		Axes: sweep.Axes{MCSamples: []int{48}, MCSigma: []float64{0.2, 0.25}},
	}
	run := func() *sweep.Results {
		st, err := cl.CreateSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if _, err := cl.WaitSweep(ctx, st.ID, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		res, err := cl.SweepResults(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if len(first.Rows) != 2 || first.Failed != 0 {
		t.Fatalf("results %+v", first)
	}
	for i, row := range first.Rows {
		if row.MC == nil {
			t.Fatalf("row %d missing mc block", i)
		}
		if row.MC.Samples != 48 || row.MC.Seed != 9 {
			t.Fatalf("row %d mc block %+v", i, row.MC)
		}
		if row.MC.YieldCell <= 0 || row.MC.YieldCell > 1 {
			t.Fatalf("row %d cell yield %v", i, row.MC.YieldCell)
		}
	}
	second := run()
	for i := range first.Rows {
		if !second.Rows[i].Cached {
			t.Fatalf("repeat row %d not served from cache", i)
		}
		if *second.Rows[i].MC != *first.Rows[i].MC {
			t.Fatalf("row %d mc block not reproducible:\n%+v\n%+v",
				i, first.Rows[i].MC, second.Rows[i].MC)
		}
	}
}
