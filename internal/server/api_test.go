package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/sweep"
)

const smallSweep = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{"spares":[0,4],"defects":[0,5]}}`

// rawRequest issues one exchange and returns status, headers and body.
func rawRequest(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestEnvelopeAndMethodTable drives every /v1 route twice: once with
// its documented method, asserting the uniform envelope (exactly one
// payload member, explicit null error, application/json), and once
// with a method the route does not accept, asserting 405 + Allow +
// the same envelope carrying ERR_BAD_REQUEST.
func TestEnvelopeAndMethodTable(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)

	// Seed one job and one sweep so the id-bearing routes have targets.
	_, compiled := postCompile(t, ts, smallReq, "")
	jobID, _ := compiled["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job id: %v", compiled)
	}
	resp, raw := rawRequest(t, http.MethodPost, ts.URL+"/v1/sweeps", smallSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep create %d: %s", resp.StatusCode, raw)
	}
	var swEnv map[string]any
	if err := json.Unmarshal(raw, &swEnv); err != nil {
		t.Fatal(err)
	}
	sweepID := swEnv["sweep"].(map[string]any)["id"].(string)

	routes := []struct {
		method string
		path   string
		body   string
		member string // expected payload member; "raw" = unenveloped stream
		allow  string // expected 405 Allow list when wider than method
	}{
		{"POST", "/v1/compile", smallReq, "job", ""},
		{"GET", "/v1/jobs/" + jobID, "", "job", ""},
		{"GET", "/v1/jobs/" + jobID + "/result", "", "data", ""},
		{"GET", "/v1/jobs/" + jobID + "/artifact/datasheet.txt", "", "raw", "GET, HEAD"},
		{"POST", "/v1/sweeps", smallSweep, "sweep", ""},
		{"GET", "/v1/sweeps/" + sweepID, "", "sweep", ""},
		{"GET", "/v1/sweeps/" + sweepID + "/results", "", "data", ""},
		{"GET", "/v1/processes", "", "data", ""},
		{"GET", "/v1/tests", "", "data", ""},
	}
	for _, rt := range routes {
		t.Run(rt.method+" "+rt.path, func(t *testing.T) {
			resp, raw := rawRequest(t, rt.method, ts.URL+rt.path, rt.body)
			if resp.StatusCode >= 400 {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			if rt.member != "raw" {
				if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
					t.Fatalf("content type %q", ct)
				}
				var env map[string]any
				if err := json.Unmarshal(raw, &env); err != nil {
					t.Fatalf("non-JSON body: %v\n%s", err, raw)
				}
				errVal, present := env["error"]
				if !present || errVal != nil {
					t.Fatalf("success envelope error slot: present=%v value=%v", present, errVal)
				}
				for _, member := range []string{"job", "sweep", "data"} {
					_, has := env[member]
					if member == rt.member && !has {
						t.Fatalf("envelope missing %q member: %s", member, raw)
					}
					if member != rt.member && has {
						t.Fatalf("envelope carries extra %q member: %s", member, raw)
					}
				}
			}

			// Wrong method: DELETE is on no route's allow list.
			resp2, raw2 := rawRequest(t, http.MethodDelete, ts.URL+rt.path, "")
			if resp2.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("wrong method status %d: %s", resp2.StatusCode, raw2)
			}
			wantAllow := rt.allow
			if wantAllow == "" {
				wantAllow = rt.method
			}
			if allow := resp2.Header.Get("Allow"); allow != wantAllow {
				t.Fatalf("Allow header %q, want %q", allow, wantAllow)
			}
			if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("405 content type %q", ct)
			}
			var env map[string]any
			if err := json.Unmarshal(raw2, &env); err != nil {
				t.Fatalf("405 body not JSON: %s", raw2)
			}
			errObj, ok := env["error"].(map[string]any)
			if !ok || errObj["code"].(string) != "ERR_BAD_REQUEST" {
				t.Fatalf("405 envelope error %v", env["error"])
			}
		})
	}
}

// TestErrorEnvelopeShape: failures carry only the error member, with
// code/message (and no payload member).
func TestErrorEnvelopeShape(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	resp, raw := rawRequest(t, http.MethodPost, ts.URL+"/v1/compile", `{"wordz":1}`)
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{"job", "sweep", "data"} {
		if _, has := env[member]; has {
			t.Fatalf("error envelope carries %q: %s", member, raw)
		}
	}
	errObj := env["error"].(map[string]any)
	if errObj["code"].(string) != "ERR_INVALID_PARAMS" || errObj["message"].(string) == "" {
		t.Fatalf("error member %v", errObj)
	}
}

// TestVersionedCompileRequests: the version field is accepted when
// absent or current, rejected when unknown, and does not perturb the
// content key (the explicit-version request hits the cache entry the
// unversioned one created).
func TestVersionedCompileRequests(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	status, first := postCompile(t, ts, smallReq, "")
	if status != 200 {
		t.Fatalf("unversioned compile %d", status)
	}
	status, versioned := postCompile(t, ts, `{"version":1,"words":256,"bpw":8,"bpc":4,"spares":4}`, "")
	if status != 200 || !versioned["cached"].(bool) {
		t.Fatalf("version:1 request missed the cache: %d %v", status, versioned["cached"])
	}
	if versioned["key"].(string) != first["key"].(string) {
		t.Fatal("version field changed the content key")
	}
	status, m := postCompile(t, ts, `{"version":9,"words":256,"bpw":8,"bpc":4,"spares":4}`, "")
	if status != 400 {
		t.Fatalf("unknown version status %d: %v", status, m)
	}
	if m["error"].(map[string]any)["code"].(string) != "ERR_BAD_REQUEST" {
		t.Fatalf("unknown version code %v", m["error"])
	}
}

// TestArtifactStreamingHeaders: artifacts stream with an exact
// Content-Length and a per-kind Content-Type.
func TestArtifactStreamingHeaders(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	_, compiled := postCompile(t, ts, smallReq, "")
	jobID := compiled["job_id"].(string)

	cases := []struct {
		name string
		ct   string
	}{
		{"datasheet.json", "application/json; charset=utf-8"},
		{"datasheet.txt", "text/plain; charset=utf-8"},
		{"trpla_and.plane", "text/plain; charset=utf-8"},
		{"layout.svg", "image/svg+xml"},
		{"layout.gds", "application/octet-stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := rawRequest(t, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/artifact/"+tc.name, "")
			if resp.StatusCode != 200 {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.ct {
				t.Fatalf("content type %q, want %q", ct, tc.ct)
			}
			cl := resp.Header.Get("Content-Length")
			if cl == "" {
				t.Fatal("no Content-Length header")
			}
			n, err := strconv.Atoi(cl)
			if err != nil || n != len(body) {
				t.Fatalf("Content-Length %q vs body %d bytes", cl, len(body))
			}
			if n == 0 {
				t.Fatal("empty artifact")
			}
		})
	}
}

// TestSweepLifecycleOverHTTP drives a sweep through the public client
// bindings: create, wait, results, and a repeat sweep that must be
// fully served from the cache (zero recompiles).
func TestSweepLifecycleOverHTTP(t *testing.T) {
	ts, _, q, _ := testServer(t, jobs.Config{}, 64<<20)
	cl := sweep.NewClient(ts.URL)

	spec := sweep.Spec{
		Base: canon.Request{Words: 256, BPW: 8, BPC: 4, Spares: 4},
		Axes: sweep.Axes{Spares: []int{0, 4}, Defects: []float64{0, 5}},
	}
	st, err := cl.CreateSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 4 || st.UniqueCompiles != 2 {
		t.Fatalf("initial status %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err = cl.WaitSweep(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Done != 4 {
		t.Fatalf("final status %+v", st)
	}
	res, err := cl.SweepResults(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Rows) != 4 {
		t.Fatalf("results %+v", res)
	}
	for _, row := range res.Rows {
		if row.Defects == 5 && row.Spares == 4 && row.YieldBISR <= row.YieldNoRepair {
			t.Fatalf("BISR yield must dominate: %+v", row)
		}
	}

	// Repeat sweep: every point must be a cache hit, with no new
	// compiles on the queue.
	before := q.Stats().Completed
	st2, err := cl.CreateSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err = cl.WaitSweep(ctx, st2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != st2.Total {
		t.Fatalf("repeat sweep not fully cached: %+v", st2)
	}
	if got := q.Stats().Completed; got != before {
		t.Fatalf("repeat sweep ran compiles: %d -> %d", before, got)
	}

	// Unknown sweep id maps to 404 through the client's typed errors.
	if _, err := cl.SweepStatus("sweep-999999"); err == nil {
		t.Fatal("unknown sweep accepted")
	}
}

// TestStoreTierRestartWarm: a compile persisted to the disk store is
// served as a cache hit by a fresh server (new process's cache, same
// store directory), annotated with the disk tier; a corrupted object
// is quarantined, recompiled and re-persisted.
func TestStoreTierRestartWarm(t *testing.T) {
	dir := t.TempDir()
	serve := func() (*httptest.Server, *store.Store, func()) {
		st, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
		s := New(Config{Queue: q, Cache: cache.New(64 << 20), Store: st})
		hs := httptest.NewServer(s.Handler())
		return hs, st, func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			q.Shutdown(ctx)
		}
	}

	// Generation 1: compile and persist.
	hs1, st1, stop1 := serve()
	status, first := postCompile(t, hs1, smallReq, "")
	if status != 200 || first["cached"].(bool) {
		t.Fatalf("gen1 compile %d %v", status, first["cached"])
	}
	key := first["key"].(string)
	if st1.Stats().Puts != 1 || !st1.Contains(key) {
		t.Fatalf("compile not persisted: %+v", st1.Stats())
	}
	stop1()

	// Generation 2: same directory, empty memory cache — the identical
	// request must be served from disk without a compile.
	hs2, st2, stop2 := serve()
	if st2.Stats().ScannedAtStartup != 1 {
		t.Fatalf("startup scan %+v", st2.Stats())
	}
	status, warm := postCompile(t, hs2, smallReq, "")
	if status != 200 || !warm["cached"].(bool) {
		t.Fatalf("gen2 not cached: %d %v", status, warm)
	}
	if warm["cache_tier"].(string) != "hit-disk" {
		t.Fatalf("cache tier %v, want hit-disk", warm["cache_tier"])
	}
	if warm["key"].(string) != key {
		t.Fatal("key drifted across restart")
	}
	if st2.Stats().Hits != 1 {
		t.Fatalf("store hits %+v", st2.Stats())
	}
	// Second identical request is now a memory hit (promoted).
	if _, mem := postCompile(t, hs2, smallReq, ""); mem["cache_tier"].(string) != "hit" {
		t.Fatalf("promotion failed: %v", mem["cache_tier"])
	}
	stop2()

	// Generation 3: corrupt the object on disk; the server must
	// quarantine it, recompile and persist a fresh copy.
	path := filepath.Join(dir, "objects", key+".entry")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	hs3, st3, stop3 := serve()
	defer stop3()
	status, m := postCompile(t, hs3, smallReq, "")
	if status != 200 {
		t.Fatalf("gen3 compile %d", status)
	}
	if m["cached"].(bool) {
		t.Fatal("corrupt object served as a cache hit")
	}
	stats := st3.Stats()
	if stats.Corrupt != 1 || st3.QuarantinedCount() != 1 {
		t.Fatalf("corruption not quarantined: %+v quarantined=%d", stats, st3.QuarantinedCount())
	}
	if !st3.Contains(key) {
		t.Fatal("recompiled object not re-persisted")
	}
}

// TestHeadAndObjectEndpoints: HEAD on the artifact route returns the
// GET headers (content type, exact Content-Length) with an empty
// body; /v1/objects/{key} serves the verbatim on-disk object image
// under GET and HEAD, 404s (enveloped) for unknown keys, and lists
// both methods in the 405 Allow header.
func TestHeadAndObjectEndpoints(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	s := New(Config{Queue: q, Cache: cache.New(64 << 20), Store: st})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	}()

	_, compiled := postCompile(t, ts, smallReq, "")
	jobID, _ := compiled["job_id"].(string)
	key, _ := compiled["key"].(string)
	if jobID == "" || key == "" {
		t.Fatalf("compile response missing ids: %v", compiled)
	}

	artifact := "/v1/jobs/" + jobID + "/artifact/datasheet.txt"
	respGet, body := rawRequest(t, http.MethodGet, ts.URL+artifact, "")
	if respGet.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("artifact GET %d (%d bytes)", respGet.StatusCode, len(body))
	}
	respHead, headBody := rawRequest(t, http.MethodHead, ts.URL+artifact, "")
	if respHead.StatusCode != http.StatusOK {
		t.Fatalf("artifact HEAD %d", respHead.StatusCode)
	}
	if len(headBody) != 0 {
		t.Fatalf("artifact HEAD carried a %d-byte body", len(headBody))
	}
	if got, want := respHead.Header.Get("Content-Length"), strconv.Itoa(len(body)); got != want {
		t.Fatalf("artifact HEAD Content-Length %q, want %q", got, want)
	}
	if got, want := respHead.Header.Get("Content-Type"), respGet.Header.Get("Content-Type"); got != want {
		t.Fatalf("artifact HEAD Content-Type %q, want %q", got, want)
	}

	raw, ok := st.ReadRaw(key)
	if !ok {
		t.Fatal("compiled object not in the store")
	}
	respObj, objBody := rawRequest(t, http.MethodGet, ts.URL+"/v1/objects/"+key, "")
	if respObj.StatusCode != http.StatusOK || string(objBody) != string(raw) {
		t.Fatalf("objects GET %d (%d bytes, want %d)", respObj.StatusCode, len(objBody), len(raw))
	}
	if ct := respObj.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("objects Content-Type %q", ct)
	}
	respObjHead, objHeadBody := rawRequest(t, http.MethodHead, ts.URL+"/v1/objects/"+key, "")
	if respObjHead.StatusCode != http.StatusOK || len(objHeadBody) != 0 {
		t.Fatalf("objects HEAD %d (%d bytes)", respObjHead.StatusCode, len(objHeadBody))
	}
	if got, want := respObjHead.Header.Get("Content-Length"), strconv.Itoa(len(raw)); got != want {
		t.Fatalf("objects HEAD Content-Length %q, want %q", got, want)
	}

	// Unknown key: enveloped 404.
	resp404, raw404 := rawRequest(t, http.MethodGet, ts.URL+"/v1/objects/"+strings.Repeat("0", 64), "")
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown object %d", resp404.StatusCode)
	}
	var env404 map[string]any
	if err := json.Unmarshal(raw404, &env404); err != nil || env404["error"] == nil {
		t.Fatalf("unknown-object 404 not enveloped: %s", raw404)
	}

	// Wrong method advertises the full list.
	resp405, _ := rawRequest(t, http.MethodDelete, ts.URL+"/v1/objects/"+key, "")
	if resp405.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("objects DELETE %d", resp405.StatusCode)
	}
	if allow := resp405.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("objects Allow %q, want \"GET, HEAD\"", allow)
	}
}
