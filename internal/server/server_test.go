package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cerr"
	"repro/internal/jobs"
)

// testServer spins up a full stack on an httptest server.
func testServer(t *testing.T, qcfg jobs.Config, cacheBytes int64) (*httptest.Server, *Server, *jobs.Queue, *bytes.Buffer) {
	t.Helper()
	if qcfg.Workers == 0 {
		qcfg.Workers = 2
	}
	if qcfg.Deadline == 0 {
		qcfg.Deadline = time.Minute
	}
	q := jobs.New(qcfg)
	var logBuf bytes.Buffer
	s := New(Config{Queue: q, Cache: cache.New(cacheBytes), LogWriter: &syncWriter{buf: &logBuf}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})
	return ts, s, q, &logBuf
}

// syncWriter makes the shared log buffer race-safe for test readers.
type syncWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

const smallReq = `{"words":256,"bpw":8,"bpc":4,"spares":4}`

func postCompile(t *testing.T, ts *httptest.Server, body string, query string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/compile"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad JSON (%d): %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, unwrap(m)
}

// unwrap peels the uniform /v1 envelope: a "job", "sweep" or "data"
// payload is returned directly; error envelopes (and non-enveloped
// documents like /healthz and /metrics) pass through whole.
func unwrap(m map[string]any) map[string]any {
	for _, member := range []string{"job", "sweep", "data"} {
		if p, ok := m[member].(map[string]any); ok {
			return p
		}
	}
	return m
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad JSON (%d): %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, unwrap(m)
}

func TestCompileSyncAndCacheHit(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)

	status, first := postCompile(t, ts, smallReq, "")
	if status != http.StatusOK {
		t.Fatalf("first POST: %d %v", status, first)
	}
	if first["cached"].(bool) {
		t.Fatal("first POST cannot be cached")
	}
	key := first["key"].(string)
	if len(key) != 64 {
		t.Fatalf("key %q", key)
	}
	if _, ok := first["report"].(map[string]any); !ok {
		t.Fatal("report missing from sync response")
	}

	status, second := postCompile(t, ts, smallReq, "")
	if status != http.StatusOK {
		t.Fatalf("second POST: %d", status)
	}
	if !second["cached"].(bool) {
		t.Fatal("second identical POST must be served from cache")
	}
	if second["key"].(string) != key {
		t.Fatal("key changed between identical posts")
	}
	// The cached report must be byte-identical content.
	r1, _ := json.Marshal(first["report"])
	r2, _ := json.Marshal(second["report"])
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached report differs from computed report")
	}

	_, metrics := getJSON(t, ts.URL+"/metrics")
	cacheStats := metrics["cache"].(map[string]any)
	if cacheStats["hits"].(float64) < 1 {
		t.Fatalf("cache hits not counted: %v", cacheStats)
	}
	srv := metrics["server"].(map[string]any)
	if srv["compile_cache_hits"].(float64) < 1 {
		t.Fatalf("expvar hit counter missing: %v", srv)
	}
}

func TestSemanticAliasesShareCacheEntry(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	if code, _ := postCompile(t, ts, smallReq, ""); code != 200 {
		t.Fatal("seed compile failed")
	}
	// Same compile with every default spelled out must hit.
	explicit := `{"words":256,"bpw":8,"bpc":4,"spares":4,"process":"cda07u3m1p","corner":"typ","test":"ifa9","bufsize":2}`
	code, resp := postCompile(t, ts, explicit, "")
	if code != 200 || !resp["cached"].(bool) {
		t.Fatalf("explicit-defaults request missed the cache: %d %v", code, resp["cached"])
	}
}

func TestBadRequestsMapToHTTPStatuses(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	cases := []struct {
		body   string
		status int
		code   string
	}{
		{`not json`, 400, "ERR_INVALID_PARAMS"},
		{`{"wordz":1}`, 400, "ERR_INVALID_PARAMS"},
		{`{"words":255,"bpw":8,"bpc":4,"spares":4}`, 400, "ERR_INVALID_PARAMS"},
		{`{"words":256,"bpw":8,"bpc":4,"spares":4,"march":"zz(q9)"}`, 400, "ERR_MARCH_PARSE"},
		{`{"words":256,"bpw":8,"bpc":4,"spares":4,"deck":"feature_nm banana"}`, 400, "ERR_DECK_PARSE"},
		{`{"words":256,"bpw":8,"bpc":4,"spares":4,"and_plane":"x"}`, 400, "ERR_PLANE_PARSE"},
		{`{"words":256,"bpw":8,"bpc":4,"spares":4,"process":"nope"}`, 400, "ERR_INVALID_PARAMS"},
	}
	for _, tc := range cases {
		status, m := postCompile(t, ts, tc.body, "")
		if status != tc.status {
			t.Fatalf("%q: status %d want %d (%v)", tc.body, status, tc.status, m)
		}
		errObj := m["error"].(map[string]any)
		if errObj["code"].(string) != tc.code {
			t.Fatalf("%q: code %v want %s", tc.body, errObj["code"], tc.code)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	status, m := postCompile(t, ts, smallReq, "?async=1")
	if status != http.StatusAccepted {
		t.Fatalf("async submit: %d %v", status, m)
	}
	jobID := m["job_id"].(string)
	if jobID == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(30 * time.Second)
	var state string
	for time.Now().Before(deadline) {
		_, st := getJSON(t, ts.URL+"/v1/jobs/"+jobID)
		state = st["state"].(string)
		if state == "done" || state == "failed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job state %q", state)
	}

	code, report := getJSON(t, ts.URL+"/v1/jobs/"+jobID+"/result")
	if code != 200 {
		t.Fatalf("result: %d", code)
	}
	if report["name"].(string) != "bisram_256x8" {
		t.Fatalf("report name %v", report["name"])
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/artifact/datasheet.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "BISRAMGEN datasheet") {
		t.Fatalf("artifact: %d %.80s", resp.StatusCode, body)
	}

	if code, _ := getJSON(t, ts.URL+"/v1/jobs/"+jobID+"/artifact/nope.bin"); code != 404 {
		t.Fatalf("missing artifact: %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/job-999999"); code != 404 {
		t.Fatalf("unknown job: %d", code)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{Workers: 1, Deadline: time.Nanosecond}, 1<<20)
	status, m := postCompile(t, ts, smallReq, "")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d %v", status, m)
	}
	errObj := m["error"].(map[string]any)
	if errObj["code"].(string) != "ERR_BUDGET_EXCEEDED" {
		t.Fatalf("code %v", errObj["code"])
	}
}

func TestOverloadBackpressures429(t *testing.T) {
	// One worker, one queue slot: the third unique submission in flight
	// must be rejected with 429.
	ts, _, q, _ := testServer(t, jobs.Config{Workers: 1, Capacity: 1, Deadline: time.Minute}, 1<<20)
	// Saturate the worker via the jobs API directly (deterministic).
	release := make(chan struct{})
	q.Submit("block-worker", jobs.Interactive, func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	// Wait until it is running so the capacity math is exact.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Fill the single queue slot.
	q.Submit("fill-slot", jobs.Interactive, func(ctx context.Context) (any, error) { return nil, nil })

	status, m := postCompile(t, ts, smallReq, "?async=1")
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d %v", status, m)
	}
}

func TestConcurrentIdenticalPostsDedup(t *testing.T) {
	ts, _, q, _ := testServer(t, jobs.Config{Workers: 1, Deadline: time.Minute}, 64<<20)
	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postCompile(t, ts, smallReq, "")
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Fatalf("post %d: status %d", i, c)
		}
	}
	s := q.Stats()
	// All six must have been served by at most one actual compile (the
	// rest cache hits or singleflight attaches).
	if s.Completed > 1 {
		t.Fatalf("%d compiles ran for identical input (queue stats %+v)", s.Completed, s)
	}
}

func TestHealthzAndDrainingState(t *testing.T) {
	ts, _, q, _ := testServer(t, jobs.Config{}, 1<<20)
	code, m := getJSON(t, ts.URL+"/healthz")
	if code != 200 || m["status"].(string) != "ok" {
		t.Fatalf("healthz %d %v", code, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, m = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || m["status"].(string) != "draining" {
		t.Fatalf("draining healthz %d %v", code, m)
	}
	// Submissions during drain surface as 429.
	if status, _ := postCompile(t, ts, smallReq, ""); status != http.StatusTooManyRequests {
		t.Fatalf("drain submit status %d", status)
	}
}

func TestRequestLogLines(t *testing.T) {
	ts, _, _, logBuf := testServer(t, jobs.Config{}, 64<<20)
	postCompile(t, ts, smallReq, "")
	postCompile(t, ts, smallReq, "")
	getJSON(t, ts.URL+"/healthz")

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("want >=3 log lines, got %d: %s", len(lines), logBuf.String())
	}
	sawHit := false
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %s", ln)
		}
		for _, k := range []string{"ts", "method", "path", "status", "dur_ms"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("log line missing %q: %s", k, ln)
			}
		}
		if m["cache"] == "hit" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Fatal("no cache-hit log line recorded")
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	code, m := getJSON(t, ts.URL+"/v1/processes")
	if code != 200 {
		t.Fatalf("processes %d", code)
	}
	procs := m["processes"].([]any)
	found := false
	for _, p := range procs {
		if p.(string) == "cda07u3m1p" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cda07u3m1p missing from %v", procs)
	}
	code, m = getJSON(t, ts.URL+"/v1/tests")
	if code != 200 || len(m["tests"].([]any)) < 5 {
		t.Fatalf("tests %d %v", code, m)
	}
}

func TestMetricsDocumentShape(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	postCompile(t, ts, `{"wordz":1}`, "") // one 400 for the counters
	code, m := getJSON(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics %d", code)
	}
	for _, k := range []string{"server", "cache", "queue", "uptime_s"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %v", k, m)
		}
	}
	srv := m["server"].(map[string]any)
	byCode := srv["errors_by_code"].(map[string]any)
	if byCode["ERR_INVALID_PARAMS"].(float64) < 1 {
		t.Fatalf("error counter missing: %v", byCode)
	}
}

func TestCacheHitLatencyCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("latency comparison")
	}
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	t0 := time.Now()
	if code, _ := postCompile(t, ts, smallReq, ""); code != 200 {
		t.Fatal("compile failed")
	}
	cold := time.Since(t0)
	t1 := time.Now()
	code, m := postCompile(t, ts, smallReq, "")
	hot := time.Since(t1)
	if code != 200 || !m["cached"].(bool) {
		t.Fatal("second post missed cache")
	}
	if hot > cold {
		t.Fatalf("cache hit (%v) slower than cold compile (%v)", hot, cold)
	}
	t.Logf("cold %v, hot %v (%.1fx)", cold, hot, float64(cold)/float64(hot))
}

func TestHTTPStatusTableTotal(t *testing.T) {
	// Every taxonomy code must map to a non-500 class except
	// internal/unknown — pinning the README table.
	want := map[string]int{
		"ERR_BAD_REQUEST":     400,
		"ERR_INVALID_PARAMS":  400,
		"ERR_DECK_PARSE":      400,
		"ERR_MARCH_PARSE":     400,
		"ERR_PLANE_PARSE":     400,
		"ERR_GEOMETRY":        422,
		"ERR_NETLIST":         422,
		"ERR_SIM_DIVERGED":    422,
		"ERR_SIM_SINGULAR":    422,
		"ERR_FLOORPLAN":       422,
		"ERR_REPAIR_FAILED":   422,
		"ERR_NON_FINITE":      422,
		"ERR_BUDGET_EXCEEDED": 504,
		"ERR_OVERLOADED":      429,
		"ERR_INTERNAL":        500,
		"ERR_UNKNOWN":         500,
	}
	got := map[string]int{"ERR_UNKNOWN": HTTPStatus(fmt.Errorf("untyped"))}
	for _, code := range cerr.Codes() {
		got[code.String()] = HTTPStatus(cerr.New(code, "sample"))
	}
	for name, status := range want {
		if got[name] != status {
			t.Errorf("%s -> %d, want %d", name, got[name], status)
		}
	}
	if len(got) != len(want) {
		t.Errorf("table covers %d codes, want %d", len(got), len(want))
	}
}
