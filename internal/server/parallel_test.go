package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/jobs"
)

// parallelTestServer is testServer with the compile-parallelism
// default configured (the -compile-par knob of bisramgend).
func parallelTestServer(t *testing.T, par int) *httptest.Server {
	t.Helper()
	q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	var logBuf bytes.Buffer
	s := New(Config{
		Queue: q, Cache: cache.New(1 << 20),
		LogWriter:          &syncWriter{buf: &logBuf},
		CompileParallelism: par,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})
	return ts
}

// TestParallelCompileMetrics: a compile under a configured
// parallelism default surfaces the compile_parallel_stages_total
// counter and the compile_parallelism histogram on /metrics.
func TestParallelCompileMetrics(t *testing.T) {
	ts := parallelTestServer(t, 8)
	req := `{"words":256,"bpw":8,"bpc":4,"spares":4,"refine_iterations":500}`
	if code, m := postCompile(t, ts, req, ""); code != 200 {
		t.Fatalf("compile %d: %v", code, m)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"# TYPE compile_parallel_stages_total counter",
		"# TYPE compile_parallelism histogram",
		`compile_parallelism_bucket{le="8"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// RefineIterations>1 and Spares>0 with par>1: both the floorplan
	// fan-out, the leafcells∥microcode pair and the analysis transients
	// ran concurrently — three stage groups.
	if !strings.Contains(body, "compile_parallel_stages_total 3") {
		t.Errorf("want 3 parallel stage groups, exposition:\n%s",
			grepLines(body, "compile_parallel"))
	}
}

// TestParallelismAliasesToOneCacheEntry: the same design requested
// with different parallelism knobs must share one content key, so the
// second request is a cache hit, not a second compile.
func TestParallelismAliasesToOneCacheEntry(t *testing.T) {
	ts := parallelTestServer(t, 0) // no server default; knob from requests
	serial := `{"words":256,"bpw":8,"bpc":4,"spares":4,"parallelism":1}`
	par := `{"words":256,"bpw":8,"bpc":4,"spares":4,"parallelism":16}`
	code, first := postCompile(t, ts, serial, "")
	if code != 200 {
		t.Fatalf("serial compile %d: %v", code, first)
	}
	code, second := postCompile(t, ts, par, "")
	if code != 200 {
		t.Fatalf("parallel compile %d: %v", code, second)
	}
	if first["key"] != second["key"] {
		t.Fatalf("keys diverged: %v vs %v", first["key"], second["key"])
	}
	if cached, _ := second["cached"].(bool); !cached {
		t.Fatalf("parallel request should hit the serial compile's cache entry: %v", second)
	}
}

// grepLines filters lines containing sub (test-failure forensics).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
