package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// getWith performs a GET with optional headers and returns status,
// headers and body.
func getWith(t *testing.T, url string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body
}

// TestV1DebugTraceEndpoint: the redesigned GET /v1/debug/traces/{id}
// serves the same representations as the deprecated /debug/trace/{id}
// alias — Chrome JSON by default, a text tree via ?format=tree or
// Accept: text/plain, a wire span set via ?format=spans — and speaks
// the /v1 error contract: enveloped 404 for unknown ids, enveloped
// 405 with an Allow header for wrong methods.
func TestV1DebugTraceEndpoint(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	code, m := postCompile(t, ts, smallReq, "")
	if code != 200 {
		t.Fatalf("compile %d: %v", code, m)
	}
	jobID, _ := m["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job_id in response: %v", m)
	}

	// Default representation: Chrome trace-event JSON, byte-identical
	// to the deprecated alias.
	st, hdr, chrome := getWith(t, ts.URL+"/v1/debug/traces/"+jobID, nil)
	if st != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("v1 trace: %d %q: %s", st, hdr.Get("Content-Type"), chrome)
	}
	_, _, legacy := getWith(t, ts.URL+"/debug/trace/"+jobID, nil)
	if !bytes.Equal(chrome, legacy) {
		t.Fatal("v1 and deprecated-alias chrome documents differ")
	}

	// ?format=tree and Accept: text/plain both select the tree.
	st, hdr, tree := getWith(t, ts.URL+"/v1/debug/traces/"+jobID+"?format=tree", nil)
	if st != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") || !bytes.Contains(tree, []byte("compile")) {
		t.Fatalf("tree format: %d %q: %s", st, hdr.Get("Content-Type"), tree)
	}
	st, _, tree2 := getWith(t, ts.URL+"/v1/debug/traces/"+jobID, map[string]string{"Accept": "text/plain"})
	if st != 200 || !bytes.Equal(tree, tree2) {
		t.Fatalf("Accept: text/plain must select the tree (status %d)", st)
	}

	// ?format=spans parses as a wire span set.
	st, _, spans := getWith(t, ts.URL+"/v1/debug/traces/"+jobID+"?format=spans", nil)
	if st != 200 {
		t.Fatalf("spans format: %d: %s", st, spans)
	}
	ss, err := obs.ParseSpanSet(spans)
	if err != nil || len(ss.Spans) == 0 {
		t.Fatalf("span set did not parse (%v): %s", err, spans)
	}

	// Unknown id: enveloped 404.
	st, _, body := getWith(t, ts.URL+"/v1/debug/traces/job-999999", nil)
	var env struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if st != 404 || json.Unmarshal(body, &env) != nil || env.Error == nil || env.Error.Code == "" {
		t.Fatalf("unknown id: %d: %s", st, body)
	}

	// Wrong method: enveloped 405 advertising GET.
	resp, err := http.Post(ts.URL+"/v1/debug/traces/"+jobID, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("POST: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	env.Error = nil
	if json.Unmarshal(body, &env) != nil || env.Error == nil {
		t.Fatalf("405 not enveloped: %s", body)
	}
}

// TestV1DebugStacks: GET /v1/debug/stacks (gated like the alias
// behind EnableStacks) dumps every goroutine, and answers wrong
// methods with the enveloped 405 the bare alias never had.
func TestV1DebugStacks(t *testing.T) {
	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	s := New(Config{Queue: q, Cache: cache.New(1 << 20), EnableStacks: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})

	st, hdr, body := getWith(t, ts.URL+"/v1/debug/stacks", nil)
	if st != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("v1 stacks: %d %q: %.200s", st, hdr.Get("Content-Type"), body)
	}
	st, _, legacy := getWith(t, ts.URL+"/debug/stacks", nil)
	if st != 200 || !bytes.Contains(legacy, []byte("goroutine")) {
		t.Fatalf("deprecated stacks alias: %d", st)
	}

	resp, err := http.Post(ts.URL+"/v1/debug/stacks", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET" ||
		json.Unmarshal(b, &env) != nil || env.Error == nil {
		t.Fatalf("POST stacks: %d Allow=%q: %s", resp.StatusCode, resp.Header.Get("Allow"), b)
	}
}

// TestSweepResultsPagination: ?offset=&limit= windows the rows and
// adds page metadata to the envelope; the parameterless request stays
// the full document with no page member (the compatibility contract);
// malformed windows are enveloped 400s; and a paging client
// reassembles the full row set.
func TestSweepResultsPagination(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 64<<20)
	cl := sweep.NewClient(ts.URL)
	st, err := cl.CreateSweep(sweep.Spec{
		Base: canon.Request{Words: 256, BPW: 8, BPC: 4, Spares: 4},
		Axes: sweep.Axes{Spares: []int{0, 4}, Defects: []float64{0, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := cl.WaitSweep(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/sweeps/" + st.ID + "/results"

	type pageEnv struct {
		Data *sweep.Results `json:"data"`
		Page *sweep.Page    `json:"page"`
		Err  *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	decode := func(b []byte) pageEnv {
		var e pageEnv
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("decode: %v: %s", err, b)
		}
		return e
	}

	// Full document: no page member at all.
	code, _, full := getWith(t, base, nil)
	if code != 200 || bytes.Contains(full, []byte(`"page"`)) {
		t.Fatalf("full document grew a page member: %d: %s", code, full)
	}
	fe := decode(full)
	if len(fe.Data.Rows) != 4 {
		t.Fatalf("full rows: %+v", fe.Data)
	}

	// First window.
	code, _, b := getWith(t, base+"?offset=0&limit=3", nil)
	e := decode(b)
	if code != 200 || e.Page == nil || len(e.Data.Rows) != 3 ||
		e.Page.Total != 4 || e.Page.NextOffset == nil || *e.Page.NextOffset != 3 {
		t.Fatalf("first window: %d: %s", code, b)
	}
	// Document-level counters still describe the whole sweep.
	if e.Data.Total != fe.Data.Total || !e.Data.Complete {
		t.Fatalf("window lost document counters: %+v", e.Data)
	}

	// Last window: next_offset absent.
	code, _, b = getWith(t, base+"?offset=3&limit=3", nil)
	e = decode(b)
	if code != 200 || e.Page == nil || len(e.Data.Rows) != 1 || e.Page.NextOffset != nil {
		t.Fatalf("last window: %d: %s", code, b)
	}

	// Offset past the end: empty page, still well-formed.
	code, _, b = getWith(t, base+"?offset=99", nil)
	e = decode(b)
	if code != 200 || len(e.Data.Rows) != 0 || e.Page.Total != 4 {
		t.Fatalf("past-the-end window: %d: %s", code, b)
	}

	// Malformed windows: enveloped 400s.
	for _, q := range []string{"?offset=-1", "?limit=x", "?offset=1.5"} {
		code, _, b = getWith(t, base+q, nil)
		e = decode(b)
		if code != 400 || e.Err == nil || e.Err.Code == "" {
			t.Fatalf("%s: %d: %s", q, code, b)
		}
	}

	// A paging client reassembles the full document one row at a time.
	cl.PageSize = 1
	res, err := cl.SweepResults(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || !res.Complete || res.Total != 4 {
		t.Fatalf("paged client results: %+v", res)
	}
	for i, row := range res.Rows {
		if row.Index != fe.Data.Rows[i].Index {
			t.Fatalf("paged row order diverged at %d: %+v vs %+v", i, row, fe.Data.Rows[i])
		}
	}
}
