// Package server implements the bisramgend HTTP/JSON API: compile
// submission with content-addressed caching, batch sweeps, job
// status/result/artifact retrieval, health and metrics. It glues the
// service substrates together — internal/canon (canonical keying and
// the shared Params loader), internal/jobs (bounded worker pool with
// priorities, dedup and drain), internal/cache (byte-budgeted LRU
// over rendered artifacts), internal/store (the disk tier under the
// LRU, so restarts stay warm) and internal/sweep (cross-product batch
// evaluation) — in front of the existing compile pipeline, whose
// typed cerr taxonomy maps 1:1 onto HTTP statuses.
//
// Envelope: every /v1/* JSON response is one uniform document with
// exactly one payload member and an explicit error slot,
//
//	{ "job" | "sweep" | "data": ..., "error": {code, stage, message} | null }
//
// (artifact bodies stream raw with their own Content-Type; /healthz,
// /metrics and /debug/* keep their documented shapes). A request with
// a method the route does not accept is answered 405 with an Allow
// header and the same envelope.
//
// Endpoints:
//
//	POST /v1/compile                    submit (sync by default, ?async=1 for a job handle)
//	GET  /v1/jobs/{id}                  job status
//	GET  /v1/jobs/{id}/result           compile report (canonical JSON, under "data")
//	GET  /v1/jobs/{id}/artifact/{name}  rendered artifact (datasheet, planes, SVG, GDS)
//	POST /v1/sweeps                     submit a batch sweep (base request + axes)
//	GET  /v1/sweeps/{id}                sweep progress (aggregate + per-point)
//	GET  /v1/sweeps/{id}/results        sweep evaluation rows (Fig. 4/5, Tables II/III)
//	GET  /v1/sweeps/{id}/events         live sweep progress (Server-Sent Events)
//	GET  /v1/processes                  built-in process decks
//	GET  /v1/tests                      built-in march algorithms
//	GET  /healthz                       liveness
//	GET  /metrics                       counters (expvar JSON; ?format=prometheus for text exposition)
//	GET  /debug/trace/{id}              per-job Chrome trace-event JSON (?format=tree for text,
//	                                    ?format=spans for the wire span set the gateway merges)
//	GET  /debug/pprof/*                 runtime profiles (only with Config.EnablePprof)
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/cjson"
	"repro/internal/compiler"
	"repro/internal/gds"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tech"
)

// MaxRequestBody bounds a compile request body (inline decks and
// plane files included).
const MaxRequestBody = 8 << 20

// DefaultTraceBudget bounds how many completed job traces the server
// retains for GET /debug/trace/{id} (FIFO eviction).
const DefaultTraceBudget = 512

// Config wires a server.
type Config struct {
	Queue *jobs.Queue
	Cache *cache.Cache
	// Store is the optional disk tier under the in-memory cache.
	// Memory misses probe the store (promoting hits), compiles persist
	// to it, and daemon restarts over the same directory stay warm.
	// Nil disables the tier.
	Store *store.Store
	// LogWriter receives one JSON line per request; nil disables
	// request logging.
	LogWriter io.Writer
	// SyncWait bounds how long a synchronous POST /v1/compile waits
	// before falling back to a 202 + job handle; <= 0 means wait for
	// the job's own deadline.
	SyncWait time.Duration
	// Metrics is the telemetry registry exposed on /metrics. Share it
	// with jobs.Config.Registry so the queue's histograms appear in
	// the same exposition. Nil constructs a private registry.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SlowCompile is the forensics threshold: any compile whose
	// execution exceeds it has its span tree dumped to SlowLogWriter.
	// <= 0 disables the slow-compile log.
	SlowCompile time.Duration
	// SlowLogWriter receives slow-compile span trees; nil falls back
	// to LogWriter.
	SlowLogWriter io.Writer
	// TraceBudget bounds retained per-job traces; <= 0 means
	// DefaultTraceBudget.
	TraceBudget int
	// SweepMaxPoints caps one sweep's expanded cross product; <= 0
	// means sweep.DefaultMaxPoints.
	SweepMaxPoints int
	// SweepRetain caps remembered sweeps; <= 0 means
	// sweep.DefaultRetain.
	SweepRetain int
	// CompileParallelism is the per-compile goroutine fan-out applied
	// to requests that leave the knob at 0 (requests naming an
	// explicit parallelism keep it). Because the compiler's output is
	// byte-identical at every parallelism, this default is invisible
	// to the content-addressed cache — it only changes wall-clock
	// time. <= 0 leaves compiles serial.
	CompileParallelism int
	// SweepJournal, when non-nil, checkpoints every sweep to disk so a
	// restarted daemon resumes in-flight sweeps (see ResumeSweeps).
	SweepJournal *sweep.Journal
	// Chaos, when non-nil, is the scripted fault injector: the server
	// installs it on compile contexts (stage checkpoints consult it)
	// and exposes chaos_injections_total. Store/cache/queue injection
	// is wired by the caller via their own configs.
	Chaos *chaos.Injector
	// EnableStacks mounts GET /debug/stacks: a full goroutine dump
	// (SIGQUIT-style, without killing the process) for diagnosing
	// stuck drains.
	EnableStacks bool
	// Cluster, when non-nil, identifies this daemon's place in a
	// federation: /healthz reports the shard identity and fleet view,
	// and the cluster gauges join the /metrics expositions. The
	// interface keeps this package independent of internal/cluster —
	// the command wires the concrete view in.
	Cluster ClusterInfo
	// SSEHeartbeat is the keep-alive cadence of the sweep event stream
	// (GET /v1/sweeps/{id}/events); <= 0 means
	// sweep.DefaultEventHeartbeat.
	SSEHeartbeat time.Duration
}

// ClusterInfo is the server's read-only window onto the federation
// layer.
type ClusterInfo interface {
	// Self is this shard's own base URL in the ring.
	Self() string
	// Gateway is the advertised gateway URL ("" when none).
	Gateway() string
	// RingVersion bumps on every member up/down transition.
	RingVersion() uint64
	// PeersUp / PeersTotal describe the fleet as this shard sees it.
	PeersUp() int
	PeersTotal() int
}

// Server is the HTTP layer. Construct with New; serve s.Handler().
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	start  time.Time
	logMu  sync.Mutex
	sweeps *sweep.Manager

	jobMu      sync.Mutex
	jobsByID   map[string]*jobs.Job
	keyByID    map[string]string
	traceByID  map[string]*obs.Trace
	traceOrder []string // FIFO eviction order for traceByID

	// expvar-backed counters (unpublished maps so multiple servers can
	// coexist in one process, e.g. under test).
	metrics  *expvar.Map
	byStatus *expvar.Map
	byCode   *expvar.Map

	// obs registry instruments (dual exposition on /metrics).
	obsReg       *obs.Registry
	httpRequests *obs.Counter
	httpDur      *obs.Histogram
	cacheHits    *obs.Counter
	storeHits    *obs.Counter
	cacheMisses  *obs.Counter
	dedupes      *obs.Counter
	compileDur   *obs.Histogram
	stageDur     *obs.HistogramVec
	slowCompiles *obs.Counter
	parStages    *obs.Counter
	parDegree    *obs.Histogram
}

// New builds the server and its routing table.
func New(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.SlowLogWriter == nil {
		cfg.SlowLogWriter = cfg.LogWriter
	}
	if cfg.TraceBudget <= 0 {
		cfg.TraceBudget = DefaultTraceBudget
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		jobsByID:  map[string]*jobs.Job{},
		keyByID:   map[string]string{},
		traceByID: map[string]*obs.Trace{},
		metrics:   new(expvar.Map).Init(),
		byStatus:  new(expvar.Map).Init(),
		byCode:    new(expvar.Map).Init(),
		obsReg:    cfg.Metrics,
	}
	s.metrics.Set("responses_by_status", s.byStatus)
	s.metrics.Set("errors_by_code", s.byCode)
	s.registerMetrics()

	// The sweep manager shares the server's queue, two-tier lookup and
	// compile pipeline, so sweep points dedup against interactive
	// traffic and fill the same caches.
	s.sweeps = sweep.NewManager(sweep.Config{
		Queue: cfg.Queue,
		Lookup: func(key string) (*cache.Entry, bool) {
			e, _, ok := s.lookupEntry(key)
			return e, ok
		},
		Run: func(ctx context.Context, key string, _ canon.Request, p compiler.Params) (*cache.Entry, error) {
			runStart := time.Now()
			entry, err := s.runCompile(ctx, key, p)
			s.observeCompile(obs.FromContext(ctx), time.Since(runStart), key, err)
			return entry, err
		},
		OnJob:     s.trackJob,
		Registry:  cfg.Metrics,
		MaxPoints: cfg.SweepMaxPoints,
		Retain:    cfg.SweepRetain,
		Journal:   cfg.SweepJournal,
		Chaos:     cfg.Chaos,
	})

	s.route("POST", "/v1/compile", s.handleCompile)
	s.route("GET", "/v1/jobs/{id}", s.handleJobStatus)
	s.route("GET", "/v1/jobs/{id}/result", s.handleJobResult)
	s.route("GET, HEAD", "/v1/jobs/{id}/artifact/{name}", s.handleJobArtifact)
	s.route("GET, HEAD", "/v1/objects/{key}", s.handleObject)
	s.route("GET", "/v1/objects/{key}/report", s.handleObjectReport)
	s.route("POST", "/v1/sweeps", s.handleSweepCreate)
	s.route("GET", "/v1/sweeps/{id}", s.handleSweepStatus)
	s.route("GET", "/v1/sweeps/{id}/results", s.handleSweepResults)
	s.route("GET", "/v1/sweeps/{id}/events", s.handleSweepEvents)
	s.route("GET", "/v1/processes", s.handleProcesses)
	s.route("GET", "/v1/tests", s.handleTests)
	s.route("GET", "/v1/debug/traces/{id}", s.handleTraceV1)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Deprecated alias of /v1/debug/traces/{id}; gateways in the field
	// still fetch span sets from it, so it stays.
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if cfg.EnableStacks {
		s.route("GET", "/v1/debug/stacks", handleStacks)
		// Deprecated alias of /v1/debug/stacks.
		s.mux.HandleFunc("GET /debug/stacks", handleStacks)
	}
	return s
}

// ResumeSweeps re-launches journaled in-flight sweeps from a previous
// process over the same journal directory. Finished points replay
// through the content-addressed store lookup (zero recompiles);
// unfinished points re-enter the queue. Call once, after the daemon's
// listener is up or about to be. Returns how many sweeps resumed.
func (s *Server) ResumeSweeps() (int, error) {
	return s.sweeps.Resume()
}

// handleStacks is GET /debug/stacks: the stack of every live
// goroutine, the in-process equivalent of SIGQUIT for diagnosing
// stuck drains or wedged workers.
func handleStacks(w http.ResponseWriter, r *http.Request) {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		if len(buf) >= 64<<20 {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// route registers a method-specific handler plus a bare-path fallback
// that answers any other method with an enveloped 405 carrying the
// Allow header. (Go 1.22 mux method patterns are more specific than
// the bare pattern, so the fallback only fires on method mismatch;
// without it the mux's built-in 405 would bypass the envelope.)
// allow is the full Allow list ("GET, HEAD"); its first token is the
// mux method pattern — a GET pattern also matches HEAD, so "GET,
// HEAD" routes both through h while advertising both in the 405.
func (s *Server) route(allow, pattern string, h http.HandlerFunc) {
	method, _, _ := strings.Cut(allow, ",")
	s.mux.HandleFunc(method+" "+pattern, h)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeError(w, cerr.New(cerr.CodeBadRequest,
			"server: method %s not allowed on %s", r.Method, pattern),
			http.StatusMethodNotAllowed)
	})
}

// registerMetrics wires the server's instruments plus the runtime
// gauges (uptime, goroutines, build info) and the cache/store gauges
// into the obs registry.
func (s *Server) registerMetrics() {
	r := s.obsReg
	s.httpRequests = r.Counter("http_requests_total", "HTTP requests served.")
	s.httpDur = r.Histogram("http_request_duration_seconds", "HTTP request handling latency.", nil)
	s.cacheHits = r.Counter("compile_cache_hits_total", "Compile submissions served from the artifact cache (either tier).")
	s.storeHits = r.Counter("compile_store_hits_total", "Compile submissions served from the disk store tier (memory miss, disk hit).")
	s.cacheMisses = r.Counter("compile_cache_misses_total", "Compile submissions that missed both cache tiers.")
	s.dedupes = r.Counter("compile_deduped_total", "Compile submissions coalesced onto an identical in-flight job.")
	s.compileDur = r.Histogram("compile_duration_seconds", "End-to-end compile execution time on a worker.", nil)
	s.stageDur = r.HistogramVec("compile_stage_duration_seconds",
		"Per-span pipeline stage latency (queue wait, compiler stages, bounded kernels).", "stage", nil)
	s.slowCompiles = r.Counter("compile_slow_total", "Compiles that exceeded the slow-compile threshold.")
	s.parStages = r.Counter("compile_parallel_stages_total",
		"Concurrent stage fan-outs executed across all compiles (leafcells∥microcode, multi-start floorplan, analysis transients).")
	s.parDegree = r.Histogram("compile_parallelism",
		"Per-compile goroutine fan-out bound (the parallelism knob after server defaulting).",
		[]float64{1, 2, 4, 8, 16, 32, 64})

	r.GaugeFunc("uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("go_goroutines", "Live goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Info("build_info", "Build metadata from debug.ReadBuildInfo.", buildInfoLabels())
	if c := s.cfg.Cache; c != nil {
		r.GaugeFunc("cache_bytes", "Resident artifact cache size in bytes.",
			func() float64 { return float64(c.Stats().Bytes) })
		r.GaugeFunc("cache_entries", "Resident artifact cache entry count.",
			func() float64 { return float64(c.Stats().Entries) })
	}
	if st := s.cfg.Store; st != nil {
		r.GaugeFunc("store_bytes", "Resident disk store size in bytes.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.GaugeFunc("store_entries", "Disk store object count.",
			func() float64 { return float64(st.Stats().Entries) })
		r.GaugeFunc("store_hits", "Disk store read hits (verified objects served).",
			func() float64 { return float64(st.Stats().Hits) })
		r.GaugeFunc("store_misses", "Disk store read misses.",
			func() float64 { return float64(st.Stats().Misses) })
		r.GaugeFunc("store_evictions", "Disk store objects removed by the byte-budget GC.",
			func() float64 { return float64(st.Stats().Evictions) })
		r.GaugeFunc("store_corrupt", "Disk store objects that failed verification and were quarantined.",
			func() float64 { return float64(st.Stats().Corrupt) })
		r.GaugeFunc("store_scanned_at_startup", "Objects the opening index scan found (restart warmness).",
			func() float64 { return float64(st.Stats().ScannedAtStartup) })
		r.GaugeFunc("store_quarantine_objects", "Files currently held in the bounded quarantine directory.",
			func() float64 { return float64(st.Stats().QuarantineObjects) })
		const peerFetchHelp = "Ring-peer artifact fetches on local store miss, by outcome."
		r.CounterFuncLabeled("store_peer_fetch_total", peerFetchHelp,
			map[string]string{"outcome": "hit"},
			func() float64 { return float64(st.Stats().PeerHits) })
		r.CounterFuncLabeled("store_peer_fetch_total", peerFetchHelp,
			map[string]string{"outcome": "miss"},
			func() float64 { return float64(st.Stats().PeerMisses) })
		r.CounterFuncLabeled("store_peer_fetch_total", peerFetchHelp,
			map[string]string{"outcome": "corrupt"},
			func() float64 { return float64(st.Stats().PeerCorrupt) })
	}
	if cl := s.cfg.Cluster; cl != nil {
		r.GaugeFunc("cluster_ring_version", "Monotonic ring version; bumps on every member up/down transition.",
			func() float64 { return float64(cl.RingVersion()) })
		r.GaugeFunc("cluster_peers_up", "Fleet members currently considered healthy.",
			func() float64 { return float64(cl.PeersUp()) })
		r.GaugeFunc("cluster_peers_total", "Fleet members in the configured ring.",
			func() float64 { return float64(cl.PeersTotal()) })
	}
	if in := s.cfg.Chaos; in != nil {
		r.CounterFunc("chaos_injections_total", "Scripted faults the chaos injector has fired.",
			func() float64 { return float64(in.Fired()) })
	}
	if q := s.cfg.Queue; q != nil {
		r.GaugeFunc("compiles_inflight", "Compiles currently executing on workers.",
			func() float64 { return float64(q.Stats().Running) })
		r.GaugeFunc("queue_depth", "Compile jobs queued and not yet running.",
			func() float64 { return float64(q.Stats().Queued) })
	}
}

// buildInfoLabels extracts the build-info idiom labels: Go toolchain
// version, module version and VCS revision when stamped.
func buildInfoLabels() map[string]string {
	labels := map[string]string{"go_version": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			labels["version"] = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				labels["revision"] = kv.Value
			case "vcs.modified":
				labels["modified"] = kv.Value
			}
		}
	}
	return labels
}

// Handler returns the root handler with request logging and counting
// wrapped around the routing table.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		startT := time.Now()
		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rw, r)
		dur := time.Since(startT)
		s.metrics.Add("requests_total", 1)
		s.byStatus.Add(fmt.Sprintf("%d", rw.status), 1)
		s.httpRequests.Inc()
		s.httpDur.ObserveDuration(dur)
		s.logRequest(r, rw, dur)
	})
}

// statusWriter captures the response status and size for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	// meta carries handler-set annotations (cache hit, key, code) into
	// the request log.
	meta struct {
		key, cacheState, errCode string
	}
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so SSE handlers can stream
// through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequest emits one structured JSON line per request.
func (s *Server) logRequest(r *http.Request, rw *statusWriter, dur time.Duration) {
	if s.cfg.LogWriter == nil {
		return
	}
	line := map[string]any{
		"ts":     time.Now().UTC().Format(time.RFC3339Nano),
		"method": r.Method,
		"path":   r.URL.Path,
		"status": rw.status,
		"dur_ms": float64(dur.Microseconds()) / 1000,
		"bytes":  rw.bytes,
		"remote": r.RemoteAddr,
	}
	if rw.meta.key != "" {
		line["key"] = rw.meta.key
	}
	if rw.meta.cacheState != "" {
		line["cache"] = rw.meta.cacheState
	}
	if rw.meta.errCode != "" {
		line["code"] = rw.meta.errCode
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.LogWriter.Write(append(b, '\n'))
}

// HTTPStatus maps the cerr taxonomy onto HTTP statuses. The mapping
// is part of the service contract and documented in the README:
//
//	ERR_BAD_REQUEST, ERR_INVALID_PARAMS,
//	ERR_DECK_PARSE, ERR_MARCH_PARSE,
//	ERR_PLANE_PARSE                        -> 400 Bad Request
//	ERR_GEOMETRY, ERR_NETLIST, ERR_FLOORPLAN,
//	ERR_SIM_DIVERGED, ERR_SIM_SINGULAR,
//	ERR_NON_FINITE, ERR_REPAIR_FAILED      -> 422 Unprocessable Entity
//	ERR_BUDGET_EXCEEDED                    -> 504 Gateway Timeout
//	ERR_OVERLOADED                         -> 429 Too Many Requests (+ Retry-After)
//	ERR_INTERNAL, ERR_UNKNOWN              -> 500 Internal Server Error
func HTTPStatus(err error) int {
	switch cerr.CodeOf(err) {
	case cerr.CodeBadRequest, cerr.CodeInvalidParams, cerr.CodeDeckParse, cerr.CodeMarchParse, cerr.CodePlaneParse:
		return http.StatusBadRequest
	case cerr.CodeGeometry, cerr.CodeNetlist, cerr.CodeFloorplan,
		cerr.CodeSimDiverged, cerr.CodeSimSingular, cerr.CodeNonFinite, cerr.CodeRepairFailed:
		return http.StatusUnprocessableEntity
	case cerr.CodeBudgetExceeded:
		return http.StatusGatewayTimeout
	case cerr.CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds computes the Retry-After hint for shed load: the
// observed p50 compile latency scaled by how many queue drains stand
// between the client and a free worker, clamped to [1s, 120s]. With
// no latency data yet (cold process) the floor applies — 1s is long
// enough to matter, short enough to keep a burst's tail latency sane.
func (s *Server) retryAfterSeconds() int {
	p50 := s.compileDur.Snapshot().Quantile(0.5)
	var backlog float64
	if q := s.cfg.Queue; q != nil {
		qs := q.Stats()
		if qs.Workers > 0 {
			backlog = float64(qs.Queued+qs.Running) / float64(qs.Workers)
		}
	}
	secs := int(p50 * (1 + backlog))
	if secs < 1 {
		secs = 1
	}
	if secs > 120 {
		secs = 120
	}
	return secs
}

// wireError is the envelope's error member.
type wireError struct {
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
}

// envelope is the uniform /v1 response document: exactly one payload
// member (job, sweep or data) plus an explicit error slot that is
// null on success. Paged collection responses additionally carry the
// page metadata beside the payload.
type envelope struct {
	Job   any         `json:"job,omitempty"`
	Sweep any         `json:"sweep,omitempty"`
	Data  any         `json:"data,omitempty"`
	Page  *sweep.Page `json:"page,omitempty"`
	Error *wireError  `json:"error"`
}

// writeError renders err in the envelope with its mapped (or
// overridden) status.
func (s *Server) writeError(w http.ResponseWriter, err error, statusOverride int) {
	status := statusOverride
	if status == 0 {
		status = HTTPStatus(err)
	}
	if status == http.StatusTooManyRequests {
		// Shed load carries a concrete hint: the observed p50 compile
		// latency scaled by the queue backlog. Part of the documented
		// retry contract.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	we := &wireError{
		Code:    cerr.CodeOf(err).String(),
		Stage:   cerr.StageOf(err),
		Message: err.Error(),
	}
	s.byCode.Add(we.Code, 1)
	if rw, ok := w.(*statusWriter); ok {
		rw.meta.errCode = we.Code
	}
	s.writeJSON(w, status, envelope{Error: we})
}

// writeJob / writeSweep / writeData render a success envelope with
// the given payload member.
func (s *Server) writeJob(w http.ResponseWriter, status int, v any) {
	s.writeJSON(w, status, envelope{Job: v})
}

func (s *Server) writeSweep(w http.ResponseWriter, status int, v any) {
	s.writeJSON(w, status, envelope{Sweep: v})
}

func (s *Server) writeData(w http.ResponseWriter, status int, v any) {
	s.writeJSON(w, status, envelope{Data: v})
}

// writeJSON renders v as canonical JSON.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := cjson.MarshalIndent(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"ERR_INTERNAL","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(b)
}

// compileResponse is the "job" payload of submit/result responses.
type compileResponse struct {
	Key      string `json:"key"`
	JobID    string `json:"job_id,omitempty"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	Deduped  bool   `json:"deduped,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// CacheTier names the tier a cached response was served from:
	// "hit" (memory) or "hit-disk" (store, promoted to memory).
	CacheTier string `json:"cache_tier,omitempty"`
	// ElapsedMs is the server-side handling time for this request —
	// on a cache hit it collapses to lookup cost.
	ElapsedMs float64         `json:"elapsed_ms"`
	Artifacts map[string]int  `json:"artifacts,omitempty"` // name -> byte size
	Report    json.RawMessage `json:"report,omitempty"`
}

// lookupEntry probes the two-tier artifact cache: the in-memory LRU
// first, then the disk store, promoting disk hits into memory. The
// returned tier is "hit", "hit-disk" or "miss".
func (s *Server) lookupEntry(key string) (*cache.Entry, string, bool) {
	if e, ok := s.cfg.Cache.Get(key); ok {
		return e, "hit", true
	}
	if st := s.cfg.Store; st != nil {
		if e, ok := st.Get(key); ok {
			s.cfg.Cache.Put(e)
			return e, "hit-disk", true
		}
	}
	return nil, "miss", false
}

// handleCompile is POST /v1/compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	startT := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	if err != nil {
		s.writeError(w, cerr.Wrap(cerr.CodeInvalidParams, err, "server: request body"), http.StatusRequestEntityTooLarge)
		return
	}
	req, err := canon.ParseRequest(body)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	params, err := req.Params()
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	key, err := canon.KeyOfParams(params)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	// Server-side concurrency default. Applied strictly AFTER keying:
	// parallelism is an execution knob the canonical key excludes, so
	// a request compiled serially elsewhere still hits this entry.
	if params.Parallelism == 0 && s.cfg.CompileParallelism > 0 {
		params.Parallelism = s.cfg.CompileParallelism
	}
	if rw, ok := w.(*statusWriter); ok {
		rw.meta.key = key
	}
	pri, err := jobs.ParsePriority(r.URL.Query().Get("priority"))
	if err != nil {
		s.writeError(w, err, 0)
		return
	}

	// Content-addressed fast path: an identical fully-validated input
	// has already been compiled, in this process (memory tier) or a
	// previous one (disk tier).
	if entry, tier, ok := s.lookupEntry(key); ok {
		s.metrics.Add("compile_cache_hits", 1)
		s.cacheHits.Inc()
		if tier == "hit-disk" {
			s.metrics.Add("compile_store_hits", 1)
			s.storeHits.Inc()
		}
		s.annotateCache(w, tier)
		resp := s.entryResponse(entry, "", false, startT, true)
		resp.CacheTier = tier
		s.writeJob(w, http.StatusOK, resp)
		return
	}
	s.annotateCache(w, "miss")
	s.metrics.Add("compile_cache_misses", 1)
	s.cacheMisses.Inc()

	// Every submission carries a trace: the queue records the wait span,
	// the pipeline records its stage spans, and the completed tree is
	// retrievable via GET /debug/trace/{job_id}. Deduped submissions
	// share the first submitter's trace. A traceparent header continues
	// the sender's distributed trace — same trace ID, with the remote
	// span remembered so the gateway's merge parents this shard's spans
	// under its proxy.route span.
	tr := obs.NewTrace("")
	if tid, parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader)); ok {
		tr = obs.NewTraceRemote(tid, parent)
	}
	job, deduped, err := s.cfg.Queue.SubmitTraced(key, pri, tr, func(ctx context.Context) (any, error) {
		runStart := time.Now()
		entry, cmpErr := s.runCompile(ctx, key, params)
		s.observeCompile(obs.FromContext(ctx), time.Since(runStart), key, cmpErr)
		if cmpErr != nil {
			return nil, cmpErr
		}
		return entry, nil
	})
	if err != nil {
		// Overload (full or draining queue) back-pressures as
		// ERR_OVERLOADED -> 429 + Retry-After via the standard mapping.
		s.writeError(w, err, 0)
		return
	}
	s.trackJob(job, key)
	if deduped {
		s.metrics.Add("compile_deduped", 1)
		s.dedupes.Inc()
	}

	if r.URL.Query().Get("async") != "" {
		s.writeJob(w, http.StatusAccepted, compileResponse{
			Key: key, JobID: job.ID, State: job.State().String(),
			Deduped: deduped, ElapsedMs: msSince(startT),
		})
		return
	}

	waitCtx := r.Context()
	if s.cfg.SyncWait > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(waitCtx, s.cfg.SyncWait)
		defer cancel()
	}
	value, jerr := job.Result(waitCtx)
	if jerr != nil {
		if waitCtx.Err() != nil && job.State() != jobs.StateFailed {
			// The wait budget expired but the job lives on: hand back a
			// handle instead of an error.
			s.writeJob(w, http.StatusAccepted, compileResponse{
				Key: key, JobID: job.ID, State: job.State().String(),
				Deduped: deduped, ElapsedMs: msSince(startT),
			})
			return
		}
		s.writeError(w, jerr, 0)
		return
	}
	entry := value.(*cache.Entry)
	resp := s.entryResponse(entry, job.ID, deduped, startT, false)
	s.writeJob(w, http.StatusOK, resp)
}

// runCompile executes the pipeline under the job context, renders the
// cacheable artifact set and fills both cache tiers.
func (s *Server) runCompile(ctx context.Context, key string, params compiler.Params) (*cache.Entry, error) {
	ctx = chaos.WithContext(ctx, s.cfg.Chaos)
	d, err := compiler.CompileCtx(ctx, params)
	if err != nil {
		return nil, err
	}
	js, err := d.JSON()
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "server: report rendering")
	}
	entry := &cache.Entry{
		Key:       key,
		Report:    []byte(js),
		Artifacts: map[string][]byte{},
		Degraded:  len(d.Degradations) > 0,
	}
	entry.Artifacts["datasheet.json"] = []byte(js)
	entry.Artifacts["datasheet.txt"] = []byte(d.Datasheet())
	var and, or strings.Builder
	if err := d.Prog.WritePlanes(&and, &or); err == nil {
		entry.Artifacts["trpla_and.plane"] = []byte(and.String())
		entry.Artifacts["trpla_or.plane"] = []byte(or.String())
	}
	if d.Top != nil {
		entry.Artifacts["layout.svg"] = []byte(render.SVG(d.Top, render.Options{Depth: 0}))
		var g strings.Builder
		if err := gds.Write(&g, d.Top, d.Top.Name); err == nil {
			entry.Artifacts["layout.gds"] = []byte(g.String())
		}
	}
	s.cfg.Cache.Put(entry)
	if st := s.cfg.Store; st != nil {
		// Disk persistence is best-effort: a full disk or an over-budget
		// object must not fail the compile that produced the entry.
		if perr := st.Put(entry); perr != nil {
			s.metrics.Add("store_put_errors", 1)
		}
	}
	s.metrics.Add("compiles_total", 1)
	return entry, nil
}

// observeCompile folds one finished compile into the telemetry: the
// end-to-end duration histogram, every recorded span (queue wait,
// compiler stages, bounded kernels) into the per-stage histogram vec,
// and — when the execution exceeded the slow-compile threshold — the
// span tree into the forensics log.
func (s *Server) observeCompile(tr *obs.Trace, dur time.Duration, key string, err error) {
	s.compileDur.ObserveDuration(dur)
	for _, sp := range tr.Spans() {
		s.stageDur.With(sp.Name).ObserveDuration(sp.Dur)
		// The compiler annotates its root span with the effective
		// concurrency: fold the fan-out degree into a histogram and
		// count the concurrent stage groups that actually ran.
		if sp.Name == "compile" {
			for _, a := range sp.Attrs {
				switch a.Key {
				case "parallelism":
					if v, perr := strconv.Atoi(a.Value); perr == nil {
						s.parDegree.Observe(float64(v))
					}
				case "parallel_stages":
					if v, perr := strconv.Atoi(a.Value); perr == nil && v > 0 {
						s.parStages.Add(uint64(v))
					}
				}
			}
		}
	}
	if s.cfg.SlowCompile <= 0 || dur < s.cfg.SlowCompile {
		return
	}
	s.slowCompiles.Inc()
	w := s.cfg.SlowLogWriter
	if w == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SLOW COMPILE key=%s dur=%s threshold=%s", key, dur.Round(time.Microsecond), s.cfg.SlowCompile)
	if err != nil {
		fmt.Fprintf(&b, " err=%s", cerr.CodeOf(err))
	}
	b.WriteByte('\n')
	b.WriteString(tr.Tree())
	s.logMu.Lock()
	defer s.logMu.Unlock()
	io.WriteString(w, b.String())
}

// entryResponse builds the "job" payload for a completed entry.
func (s *Server) entryResponse(e *cache.Entry, jobID string, deduped bool, startT time.Time, cached bool) compileResponse {
	sizes := make(map[string]int, len(e.Artifacts))
	for name, b := range e.Artifacts {
		sizes[name] = len(b)
	}
	return compileResponse{
		Key: e.Key, JobID: jobID, State: jobs.StateDone.String(),
		Cached: cached, Deduped: deduped, Degraded: e.Degraded,
		ElapsedMs: msSince(startT),
		Artifacts: sizes,
		Report:    json.RawMessage(e.Report),
	}
}

func (s *Server) annotateCache(w http.ResponseWriter, state string) {
	if rw, ok := w.(*statusWriter); ok {
		rw.meta.cacheState = state
	}
}

// trackJob registers a job for the status endpoints and retains its
// trace for GET /debug/trace/{id}, evicting the oldest trace beyond
// the configured budget (FIFO — forensics favour recent jobs).
func (s *Server) trackJob(j *jobs.Job, key string) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobsByID[j.ID] = j
	s.keyByID[j.ID] = key
	tr := j.Trace()
	if tr == nil {
		return
	}
	if _, seen := s.traceByID[j.ID]; seen {
		return
	}
	s.traceByID[j.ID] = tr
	s.traceOrder = append(s.traceOrder, j.ID)
	for len(s.traceOrder) > s.cfg.TraceBudget {
		delete(s.traceByID, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
}

// lookupTrace resolves a retained trace by job id.
func (s *Server) lookupTrace(id string) (*obs.Trace, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	tr, ok := s.traceByID[id]
	return tr, ok
}

// lookupJob resolves a tracked job by id.
func (s *Server) lookupJob(id string) (*jobs.Job, string, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobsByID[id]
	return j, s.keyByID[id], ok
}

// jobStatusBody is the "job" payload of GET /v1/jobs/{id}.
type jobStatusBody struct {
	JobID     string  `json:"job_id"`
	Key       string  `json:"key"`
	State     string  `json:"state"`
	Priority  string  `json:"priority"`
	Attached  int64   `json:"attached"`
	QueuedMs  float64 `json:"queued_ms"`
	RunMs     float64 `json:"run_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
	ErrorCode string  `json:"error_code,omitempty"`
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, key, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	submitted, started, finished := j.Times()
	body := jobStatusBody{
		JobID: j.ID, Key: key, State: j.State().String(),
		Priority: j.Priority.String(), Attached: j.Attached(),
	}
	switch {
	case started.IsZero() && !finished.IsZero():
		// Cancelled before execution (drain fast-fail): the queue wait
		// ended when the job was failed, not now.
		body.QueuedMs = float64(finished.Sub(submitted).Microseconds()) / 1000
	case started.IsZero():
		body.QueuedMs = msSince(submitted)
	default:
		body.QueuedMs = float64(started.Sub(submitted).Microseconds()) / 1000
	}
	if !started.IsZero() {
		end := finished
		if end.IsZero() {
			end = time.Now()
		}
		body.RunMs = float64(end.Sub(started).Microseconds()) / 1000
	}
	if _, jerr, done := j.Peek(); done && jerr != nil {
		body.Error = jerr.Error()
		body.ErrorCode = cerr.CodeOf(jerr).String()
	}
	s.writeJob(w, http.StatusOK, body)
}

// handleJobResult is GET /v1/jobs/{id}/result: the canonical compile
// report under the envelope's "data" member.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, _, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	value, jerr, done := j.Peek()
	if !done {
		s.writeJob(w, http.StatusAccepted, map[string]string{
			"job_id": j.ID, "state": j.State().String(),
		})
		return
	}
	if jerr != nil {
		s.writeError(w, jerr, 0)
		return
	}
	entry := value.(*cache.Entry)
	s.writeData(w, http.StatusOK, json.RawMessage(entry.Report))
}

// handleJobArtifact is GET /v1/jobs/{id}/artifact/{name}: a raw
// artifact stream (no envelope) with Content-Length and a per-kind
// Content-Type.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	j, key, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown job %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	name := r.PathValue("name")
	value, jerr, done := j.Peek()
	if !done {
		s.writeJob(w, http.StatusAccepted, map[string]string{"job_id": j.ID, "state": j.State().String()})
		return
	}
	if jerr != nil {
		s.writeError(w, jerr, 0)
		return
	}
	entry := value.(*cache.Entry)
	body, ok := entry.Artifacts[name]
	if !ok {
		// The job's entry may also have been evicted and refetched;
		// consult the two-tier cache as a second chance.
		if cached, _, hit := s.lookupEntry(key); hit {
			if b, ok2 := cached.Artifacts[name]; ok2 {
				writeArtifact(w, r, name, b)
				return
			}
		}
		s.writeError(w, cerr.New(cerr.CodeInvalidParams,
			"server: no artifact %q (have %v)", name, entry.ArtifactNames()), http.StatusNotFound)
		return
	}
	writeArtifact(w, r, name, body)
}

// handleObject is GET/HEAD /v1/objects/{key}: the verbatim on-disk
// object image for a content key — the shard-to-shard artifact fetch
// endpoint. The bytes are served UNVERIFIED by design: the fetching
// peer runs them through its own verified-read path, so a corrupt
// image quarantines on the fetcher exactly like local disk rot, and
// this handler never pays a hash pass.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store
	if st == nil {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: no object store configured"), http.StatusNotFound)
		return
	}
	key := r.PathValue("key")
	raw, ok := st.ReadRaw(key)
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: no object %s", key), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(raw)
	}
}

// handleObjectReport is GET /v1/objects/{key}/report: the cached
// compile report for a content key, served only when a cache tier
// (memory, disk, or a ring peer via the store's fetch seam) already
// holds it — it never triggers a compile. This is the gateway sweep
// Lookup seam: how a federated sweep tells a warm point from one that
// needs routing, so cluster sweep rows carry the same cached flags a
// warm single daemon would report.
func (s *Server) handleObjectReport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	entry, _, ok := s.lookupEntry(key)
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: key %s not cached", key), http.StatusNotFound)
		return
	}
	s.writeData(w, http.StatusOK, map[string]any{
		"key":      key,
		"degraded": entry.Degraded,
		"report":   json.RawMessage(entry.Report),
	})
}

// writeArtifact streams an artifact with its per-kind content type
// and an explicit Content-Length, so clients can size progress bars
// and proxies never have to buffer for chunking. HEAD requests get
// the identical headers with no body — how clients size a download
// without paying for it.
func writeArtifact(w http.ResponseWriter, r *http.Request, name string, body []byte) {
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(body)
	}
}

// artifactContentType maps an artifact name to its media type.
func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json; charset=utf-8"
	case strings.HasSuffix(name, ".svg"):
		return "image/svg+xml"
	case strings.HasSuffix(name, ".gds"):
		return "application/octet-stream"
	default:
		return "text/plain; charset=utf-8"
	}
}

// handleSweepCreate is POST /v1/sweeps.
func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	if err != nil {
		s.writeError(w, cerr.Wrap(cerr.CodeBadRequest, err, "server: sweep body"), http.StatusRequestEntityTooLarge)
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	sw, err := s.sweeps.Create(spec)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	s.metrics.Add("sweeps_total", 1)
	s.writeSweep(w, http.StatusAccepted, sw.Status())
}

// handleSweepStatus is GET /v1/sweeps/{id}.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweeps.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	s.writeSweep(w, http.StatusOK, sw.Status())
}

// handleSweepResults is GET /v1/sweeps/{id}/results. Without query
// parameters it returns the full document exactly as it always has;
// with ?offset= and/or ?limit= it returns one window of rows and puts
// the page metadata (total, next_offset) beside the payload in the
// envelope.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweeps.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	res := sw.Results()
	offset, limit, paged, err := PageParams(r)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	if !paged {
		s.writeData(w, http.StatusOK, res)
		return
	}
	win, pg := res.Paginate(offset, limit)
	s.writeJSON(w, http.StatusOK, envelope{Data: win, Page: &pg})
}

// PageParams parses ?offset=&limit= from a collection request. paged
// is false when neither is present (the full-document default). The
// gateway shares it so both serving layers reject malformed windows
// with the same enveloped error.
func PageParams(r *http.Request) (offset, limit int, paged bool, err error) {
	q := r.URL.Query()
	offStr, limStr := q.Get("offset"), q.Get("limit")
	if offStr == "" && limStr == "" {
		return 0, 0, false, nil
	}
	if offStr != "" {
		offset, err = strconv.Atoi(offStr)
		if err != nil || offset < 0 {
			return 0, 0, false, cerr.New(cerr.CodeInvalidParams,
				"server: offset must be a non-negative integer, got %q", offStr)
		}
	}
	if limStr != "" {
		limit, err = strconv.Atoi(limStr)
		if err != nil || limit < 0 {
			return 0, 0, false, cerr.New(cerr.CodeInvalidParams,
				"server: limit must be a non-negative integer, got %q", limStr)
		}
	}
	return offset, limit, true, nil
}

// handleSweepEvents is GET /v1/sweeps/{id}/events: the live progress
// stream (SSE) — every point transition exactly once by cursor, plus
// heartbeats and a terminal summary.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweeps.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	sweep.ServeEvents(w, r, sw, s.cfg.SSEHeartbeat)
}

// handleProcesses is GET /v1/processes.
func (s *Server) handleProcesses(w http.ResponseWriter, r *http.Request) {
	s.writeData(w, http.StatusOK, map[string]any{"processes": tech.Names()})
}

// handleTests is GET /v1/tests.
func (s *Server) handleTests(w http.ResponseWriter, r *http.Request) {
	s.writeData(w, http.StatusOK, map[string]any{"tests": canon.TestNames()})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	qs := s.cfg.Queue.Stats()
	status := http.StatusOK
	state := "ok"
	if qs.Draining {
		// Shedding state: load balancers should stop routing here.
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	body := map[string]any{
		"status":   state,
		"uptime_s": time.Since(s.start).Seconds(),
		"workers":  qs.Workers,
		// Resume debt: what a restart right now would owe (in-flight
		// sweeps and points, and how many of those points would be lost
		// outright without a journal).
		"sweeps": s.sweeps.Backlog(),
	}
	if cl := s.cfg.Cluster; cl != nil {
		body["role"] = "shard"
		body["self"] = cl.Self()
		if gw := cl.Gateway(); gw != "" {
			body["gateway"] = gw
		}
		body["ring_version"] = cl.RingVersion()
		body["peers_up"] = cl.PeersUp()
		body["peers_total"] = cl.PeersTotal()
	}
	s.writeJSON(w, status, body)
}

// metricsBody is the /metrics document.
type metricsBody struct {
	Server  json.RawMessage `json:"server"`
	Cache   cache.Stats     `json:"cache"`
	Store   *store.Stats    `json:"store,omitempty"`
	Queue   jobs.Stats      `json:"queue"`
	Obs     map[string]any  `json:"obs"`
	UptimeS float64         `json:"uptime_s"`
}

// handleMetrics is GET /metrics: dual exposition. The default is the
// expvar-backed counter map plus cache, store, queue and obs-registry
// snapshots in one JSON document; ?format=prometheus renders the obs
// registry as text exposition format 0.0.4 for scrapers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.obsReg.WritePrometheus(w)
		return
	}
	body := metricsBody{
		Server:  json.RawMessage(s.metrics.String()),
		Cache:   s.cfg.Cache.Stats(),
		Queue:   s.cfg.Queue.Stats(),
		Obs:     s.obsReg.Snapshot(),
		UptimeS: time.Since(s.start).Seconds(),
	}
	if st := s.cfg.Store; st != nil {
		stats := st.Stats()
		body.Store = &stats
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleTrace is GET /debug/trace/{id}, the deprecated pre-/v1 alias
// of /v1/debug/traces/{id}: the retained span set of a completed (or
// in-flight) job, as Chrome trace-event JSON by default — load it in
// chrome://tracing or Perfetto — or as an indented text tree with
// ?format=tree or a raw span set with ?format=spans.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.renderTrace(w, r, r.URL.Query().Get("format"))
}

// handleTraceV1 is GET /v1/debug/traces/{id}. The representation is
// negotiated: ?format=tree|spans|chrome wins when present, otherwise
// an Accept header of text/plain selects the tree and anything else
// the Chrome trace-event JSON.
func (s *Server) handleTraceV1(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
		format = "tree"
	}
	s.renderTrace(w, r, format)
}

// renderTrace renders the trace of job {id} in the given format
// ("tree", "spans", or anything else for Chrome trace-event JSON).
func (s *Server) renderTrace(w http.ResponseWriter, r *http.Request, format string) {
	id := r.PathValue("id")
	tr, ok := s.lookupTrace(id)
	if !ok {
		s.writeError(w, cerr.New(cerr.CodeInvalidParams, "server: no trace for job %q", id), http.StatusNotFound)
		return
	}
	switch format {
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, tr.Tree())
		return
	case "spans":
		// The wire span set a gateway fetches to merge this shard's
		// slice of a distributed trace into the end-to-end view.
		node := ""
		if cl := s.cfg.Cluster; cl != nil {
			node = cl.Self()
		}
		b, err := tr.SpanSet(node).JSON()
		if err != nil {
			s.writeError(w, cerr.Wrap(cerr.CodeInternal, err, "server: span set rendering"), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
		return
	}
	b, err := tr.ChromeJSON()
	if err != nil {
		s.writeError(w, cerr.Wrap(cerr.CodeInternal, err, "server: trace rendering"), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// Log is a convenience constructor for the structured request logger.
func Log(w io.Writer) *log.Logger { return log.New(w, "", 0) }

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}
