package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestDebugTraceEndpoint: a compiled job's trace is retrievable as
// Chrome trace-event JSON (default) and as an indented tree, and an
// unknown id is a 404.
func TestDebugTraceEndpoint(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	code, m := postCompile(t, ts, smallReq, "")
	if code != 200 {
		t.Fatalf("compile %d: %v", code, m)
	}
	jobID, _ := m["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job_id in response: %v", m)
	}

	resp, err := http.Get(ts.URL + "/debug/trace/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, raw)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"queue.wait", "compile", "compile.params", "compile.floorplan", "compile.analysis"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// Tree format.
	resp2, err := http.Get(ts.URL + "/debug/trace/" + jobID + "?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || !bytes.Contains(tree, []byte("compile")) {
		t.Fatalf("tree %d: %s", resp2.StatusCode, tree)
	}

	// Unknown id.
	resp3, err := http.Get(ts.URL + "/debug/trace/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("unknown trace id: %d", resp3.StatusCode)
	}
}

// TestMetricsPrometheusExposition: after one compile the text
// exposition carries nonzero stage histograms plus the runtime gauges
// (uptime, goroutines, build info) of satellite 2.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	if code, _ := postCompile(t, ts, smallReq, ""); code != 200 {
		t.Fatal("compile failed")
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE compile_stage_duration_seconds histogram",
		`compile_stage_duration_seconds_bucket{stage="compile"`,
		"# TYPE compile_duration_seconds histogram",
		"# TYPE http_requests_total counter",
		"# TYPE uptime_seconds gauge",
		"# TYPE go_goroutines gauge",
		"build_info{",
		"go_version=",
		"compile_cache_misses_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The compile stage histogram must have counted at least one
	// observation (nonzero +Inf bucket).
	re := regexp.MustCompile(`compile_stage_duration_seconds_bucket\{stage="compile",le="\+Inf"\} (\d+)`)
	match := re.FindStringSubmatch(body)
	if match == nil {
		t.Fatalf("no +Inf bucket for stage=compile:\n%s", body)
	}
	if n, _ := strconv.Atoi(match[1]); n < 1 {
		t.Fatalf("stage=compile bucket count %d, want >= 1", n)
	}
}

// fakeCluster is a canned ClusterInfo for exposition tests.
type fakeCluster struct{}

func (fakeCluster) Self() string        { return "http://shard-a:8047" }
func (fakeCluster) Gateway() string     { return "http://gate:8040" }
func (fakeCluster) RingVersion() uint64 { return 7 }
func (fakeCluster) PeersUp() int        { return 2 }
func (fakeCluster) PeersTotal() int     { return 3 }

// TestMetricsClusterAndPeerFetchExposition: a federated shard exports
// the cluster gauges and the labeled peer-fetch counter family in the
// Prometheus text exposition, and /healthz carries its shard identity.
func TestMetricsClusterAndPeerFetchExposition(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	defer q.Shutdown(nil2())
	s := New(Config{Queue: q, Cache: cache.New(1 << 20), Store: st, Cluster: fakeCluster{}})
	ts := newHTTPServer(t, s)

	resp, err := http.Get(ts + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"# TYPE cluster_ring_version gauge",
		"cluster_ring_version 7",
		"cluster_peers_up 2",
		"cluster_peers_total 3",
		"# TYPE store_peer_fetch_total counter",
		`store_peer_fetch_total{outcome="hit"} 0`,
		`store_peer_fetch_total{outcome="miss"} 0`,
		`store_peer_fetch_total{outcome="corrupt"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// One family header even though three const-labeled series share it.
	if n := strings.Count(body, "# TYPE store_peer_fetch_total counter"); n != 1 {
		t.Errorf("store_peer_fetch_total TYPE header repeated %d times", n)
	}

	code, hz := getJSON(t, ts+"/healthz")
	if code != 200 {
		t.Fatalf("healthz %d", code)
	}
	if hz["role"] != "shard" || hz["self"] != "http://shard-a:8047" {
		t.Fatalf("healthz identity: %v", hz)
	}
	if hz["ring_version"].(float64) != 7 || hz["peers_up"].(float64) != 2 || hz["peers_total"].(float64) != 3 {
		t.Fatalf("healthz fleet view: %v", hz)
	}
}

// TestMetricsJSONCarriesObs: the default JSON document folds in the
// obs registry snapshot next to the legacy expvar map.
func TestMetricsJSONCarriesObs(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	postCompile(t, ts, smallReq, "")
	code, m := getJSON(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics %d", code)
	}
	obsDoc, ok := m["obs"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing obs snapshot: %v", m)
	}
	for _, k := range []string{"http_requests_total", "compile_duration_seconds", "uptime_seconds"} {
		if _, ok := obsDoc[k]; !ok {
			t.Errorf("obs snapshot missing %q", k)
		}
	}
}

// TestPprofGated: /debug/pprof/ is a 404 unless EnablePprof is set.
func TestPprofGated(t *testing.T) {
	ts, _, _, _ := testServer(t, jobs.Config{}, 1<<20)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof without flag: %d, want 404", resp.StatusCode)
	}

	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	defer q.Shutdown(nil2())
	s := New(Config{Queue: q, Cache: cache.New(1 << 20), EnablePprof: true})
	ts2 := newHTTPServer(t, s)
	resp2, err := http.Get(ts2 + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("pprof with flag: %d, want 200", resp2.StatusCode)
	}
}

// TestSlowCompileLog: a compile slower than the threshold dumps its
// span tree to the slow log and bumps the counter.
func TestSlowCompileLog(t *testing.T) {
	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	defer q.Shutdown(nil2())
	var slow bytes.Buffer
	reg := obs.NewRegistry()
	s := New(Config{
		Queue: q, Cache: cache.New(1 << 20), Metrics: reg,
		SlowCompile:   time.Nanosecond, // everything is slow
		SlowLogWriter: &syncWriter{buf: &slow},
	})
	ts := newHTTPServer(t, s)
	resp, err := http.Post(ts+"/v1/compile", "application/json", strings.NewReader(smallReq))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("compile %d", resp.StatusCode)
	}
	out := slow.String()
	if !strings.Contains(out, "SLOW COMPILE") || !strings.Contains(out, "compile.floorplan") {
		t.Fatalf("slow log missing span tree:\n%s", out)
	}
	var expo strings.Builder
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), "compile_slow_total 1") {
		t.Fatalf("slow counter not bumped:\n%s", expo.String())
	}
}

// TestTraceBudgetEviction: the trace store is FIFO-bounded.
func TestTraceBudgetEviction(t *testing.T) {
	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	defer q.Shutdown(nil2())
	s := New(Config{Queue: q, Cache: cache.New(0), TraceBudget: 2})
	ids := []string{}
	for i := 0; i < 3; i++ {
		j, _, err := q.SubmitTraced("k"+strconv.Itoa(i), jobs.Interactive, obs.NewTrace(""),
			func(ctx context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		s.trackJob(j, j.Key)
	}
	s.jobMu.Lock()
	n := len(s.traceByID)
	_, oldest := s.traceByID[ids[0]]
	_, newest := s.traceByID[ids[2]]
	s.jobMu.Unlock()
	if n != 2 {
		t.Fatalf("trace store holds %d, want 2", n)
	}
	if oldest {
		t.Fatal("oldest trace not evicted")
	}
	if !newest {
		t.Fatal("newest trace missing")
	}
}

// nil2 returns a background context for queue shutdown in tests.
func nil2() context.Context { return context.Background() }

// newHTTPServer wires a Server onto a test listener with cleanup.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
