package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/tech"
)

func n2(name string, x0, x1 int) Net {
	return Net{Name: name, Terminals: []Terminal{{X: x0, Top: true}, {X: x1, Top: false}}}
}

func TestRouteBasics(t *testing.T) {
	// Two disjoint intervals share a track; an overlapping third needs
	// its own.
	res, err := Route([]Net{n2("a", 0, 10), n2("b", 20, 30), n2("c", 5, 25)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2", res.Tracks)
	}
	if res.Density != 2 {
		t.Fatalf("density = %d, want 2", res.Density)
	}
	byNet := map[string]Assignment{}
	for _, a := range res.Assignments {
		byNet[a.Net] = a
	}
	if byNet["a"].Track != byNet["b"].Track {
		t.Fatal("disjoint nets should share the first track")
	}
	if byNet["c"].Track == byNet["a"].Track {
		t.Fatal("overlapping net must take a new track")
	}
}

func TestRouteRejectsSingletons(t *testing.T) {
	if _, err := Route([]Net{{Name: "x", Terminals: []Terminal{{X: 1}}}}); err == nil {
		t.Fatal("single-terminal net accepted")
	}
}

func TestRouteDensityOptimalWithoutConstraints(t *testing.T) {
	// Left-edge is optimal (tracks == density) for interval packing.
	rng := rand.New(rand.NewSource(8))
	var nets []Net
	for i := 0; i < 40; i++ {
		x0 := rng.Intn(1000)
		nets = append(nets, n2(string(rune('a'+i%26))+string(rune('0'+i/26)), x0, x0+10+rng.Intn(200)))
	}
	res, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracks != res.Density {
		t.Fatalf("left-edge should hit density: %d tracks vs density %d", res.Tracks, res.Density)
	}
}

// Property: no two trunks on the same track overlap.
func TestQuickNoTrackOverlap(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 2
		var nets []Net
		for i := 0; i < n; i++ {
			x0 := rng.Intn(500)
			nets = append(nets, Net{
				Name: "n" + string(rune('A'+i%26)) + string(rune('a'+i/26)),
				Terminals: []Terminal{
					{X: x0, Top: true}, {X: x0 + 1 + rng.Intn(100), Top: false},
				},
			})
		}
		res, err := Route(nets)
		if err != nil {
			return false
		}
		byTrack := map[int][]Assignment{}
		for _, a := range res.Assignments {
			byTrack[a.Track] = append(byTrack[a.Track], a)
		}
		for _, as := range byTrack {
			for i := range as {
				for j := i + 1; j < len(as); j++ {
					if as[i].X0 <= as[j].X1 && as[j].X0 <= as[i].X1 {
						return false
					}
				}
			}
		}
		return res.Tracks >= res.Density
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitGeometry(t *testing.T) {
	p := tech.CDA07
	nets := []Net{n2("a", 1000, 9000), n2("b", 4000, 12000)}
	res, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	c := geom.NewCell("chan")
	box := geom.R(0, 0, 15000, 20000)
	if err := Emit(c, p, box, nets, res); err != nil {
		t.Fatal(err)
	}
	var m3, m2, via int
	for _, s := range c.Shapes {
		switch s.Layer {
		case tech.Metal3:
			m3++
		case tech.Metal2:
			m2++
		case tech.Via2:
			via++
		}
	}
	if m3 != 2 || m2 != 4 || via != 4 {
		t.Fatalf("shape counts m3=%d m2=%d via=%d", m3, m2, via)
	}
	// Emitted geometry passes DRC on the routing layers.
	rules := map[geom.Layer]geom.Rule{
		tech.Metal2: p.Rules[tech.Metal2],
		tech.Metal3: p.Rules[tech.Metal3],
	}
	if vs := geom.Check(c, rules, 5); len(vs) > 0 {
		t.Fatalf("channel geometry violates DRC: %v", vs[0])
	}
	// Too-small channel is rejected.
	if err := Emit(geom.NewCell("x"), p, geom.R(0, 0, 15000, 100), nets, res); err == nil {
		t.Fatal("undersized channel accepted")
	}
}
