// Package route implements a classic left-edge channel router — the
// "channel routing" fallback the paper contrasts with BISRAMGEN's
// preferred over-the-cell metal3 routes. Nets enter the channel as
// terminals on its top and bottom edges; each net gets one horizontal
// trunk on a track plus vertical branches to its terminals.
package route

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Terminal is one channel pin: an x position on the top or bottom
// channel edge.
type Terminal struct {
	X   int
	Top bool
}

// Net is a set of terminals to be joined in the channel.
type Net struct {
	Name      string
	Terminals []Terminal
}

// Assignment places one net's trunk on a track.
type Assignment struct {
	Net    string
	Track  int // 0-based, bottom-up
	X0, X1 int // trunk extent
}

// Result is a routed channel.
type Result struct {
	Assignments []Assignment
	Tracks      int
	// Density is the lower bound: the maximum number of nets crossing
	// any x position.
	Density int
}

// Route runs the left-edge algorithm (no vertical-constraint doglegs:
// trunks on distinct layers from branches, so vertical conflicts
// cannot short).
func Route(nets []Net) (*Result, error) {
	var ivs []interval
	for _, n := range nets {
		if len(n.Terminals) < 2 {
			return nil, fmt.Errorf("route: net %q needs at least 2 terminals", n.Name)
		}
		x0, x1 := n.Terminals[0].X, n.Terminals[0].X
		for _, t := range n.Terminals[1:] {
			if t.X < x0 {
				x0 = t.X
			}
			if t.X > x1 {
				x1 = t.X
			}
		}
		ivs = append(ivs, interval{n.Name, x0, x1})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].x0 != ivs[j].x0 {
			return ivs[i].x0 < ivs[j].x0
		}
		return ivs[i].x1 < ivs[j].x1
	})
	// Left-edge: greedily pack intervals into tracks.
	var trackEnd []int // last occupied x per track
	res := &Result{}
	for _, iv := range ivs {
		placed := false
		for tr := range trackEnd {
			if trackEnd[tr] < iv.x0 { // strict: abutting trunks would short
				trackEnd[tr] = iv.x1
				res.Assignments = append(res.Assignments, Assignment{Net: iv.name, Track: tr, X0: iv.x0, X1: iv.x1})
				placed = true
				break
			}
		}
		if !placed {
			trackEnd = append(trackEnd, iv.x1)
			res.Assignments = append(res.Assignments, Assignment{
				Net: iv.name, Track: len(trackEnd) - 1, X0: iv.x0, X1: iv.x1})
		}
	}
	res.Tracks = len(trackEnd)
	res.Density = density(ivs)
	return res, nil
}

type interval struct {
	name   string
	x0, x1 int
}

func density(ivs []interval) int {
	type ev struct{ x, d int }
	var evs []ev
	for _, iv := range ivs {
		evs = append(evs, ev{iv.x0, 1}, ev{iv.x1 + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].x != evs[j].x {
			return evs[i].x < evs[j].x
		}
		return evs[i].d < evs[j].d
	})
	cur, best := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > best {
			best = cur
		}
	}
	return best
}

// Emit materialises a routed channel as geometry inside the given
// channel box: trunks on metal3 horizontal tracks, branches on metal2
// vertical stubs from each terminal to its trunk, vias at the joins.
func Emit(c *geom.Cell, p *tech.Process, box geom.Rect, nets []Net, res *Result) error {
	if res.Tracks == 0 {
		return nil
	}
	pitch := p.Pitch(tech.Metal3)
	need := res.Tracks*pitch + pitch
	if box.H() < need {
		return fmt.Errorf("route: channel height %d < required %d for %d tracks", box.H(), need, res.Tracks)
	}
	m3w := p.MinWidth(tech.Metal3)
	m2w := p.MinWidth(tech.Metal2)
	trackY := func(tr int) int { return box.Y0 + pitch/2 + tr*pitch }
	trunkOf := map[string]Assignment{}
	for _, a := range res.Assignments {
		trunkOf[a.Net] = a
		y := trackY(a.Track)
		c.AddShape(tech.Metal3, geom.R(a.X0-m3w/2, y-m3w/2, a.X1+m3w/2, y+m3w/2), a.Net)
	}
	for _, n := range nets {
		a, ok := trunkOf[n.Name]
		if !ok {
			continue
		}
		y := trackY(a.Track)
		for _, t := range n.Terminals {
			y0, y1 := box.Y0, y
			if t.Top {
				y0, y1 = y, box.Y1
			}
			c.AddShape(tech.Metal2, geom.R(t.X-m2w/2, y0, t.X+m2w/2, y1), n.Name)
			vs := p.MinWidth(tech.Via2)
			c.AddShape(tech.Via2, geom.R(t.X-vs/2, y-vs/2, t.X+vs/2, y+vs/2), n.Name)
		}
	}
	return nil
}
