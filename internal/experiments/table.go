// Package experiments regenerates every table and figure of the
// paper's evaluation: Fig. 4 (yield vs defects), Fig. 5 (reliability
// vs age), Table I (BISR area overhead), Tables II and III (die and
// total manufacturing cost with/without BISR), Figs. 6 and 7 (layout
// plots), the Section VI TLB delay claim, the Section V fault
// coverage claims, and the ablations DESIGN.md calls out. Each
// experiment returns a structured Table that prints as aligned text
// or CSV; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string // experiment id from DESIGN.md (FIG4, TAB1, ...)
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, formatting each value.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = trimFloat(x)
		case int:
			row[i] = fmt.Sprintf("%d", x)
		case int64:
			row[i] = fmt.Sprintf("%d", x)
		case bool:
			if x {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	switch {
	case ax != 0 && ax < 0.001:
		return fmt.Sprintf("%.3e", x)
	case ax < 10:
		return fmt.Sprintf("%.4f", x)
	case ax < 1000:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.0f", x)
	}
}

// Note appends a free-text annotation printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}
