// Service-backed growth factors: the Fig. 4/5 and Table II/III
// machinery depends on compiled layouts only through the spare-count →
// area-growth-factor map, so the experiments runner can source that
// map either from local compiles (GrowthFactors) or from a bisramgend
// sweep over the spares axis (GrowthFactorsService). The downstream
// tables are pure functions of the map; because compiles are
// deterministic, both sources produce byte-identical reports.
package experiments

import (
	"context"
	"time"

	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/sweep"
)

// Fig45Base is the wire form of the Fig. 4/5 array (1024 rows, bpc=4,
// bpw=4): canonicalisation fills in the defaults (buffer size 2,
// process cda07u3m1p, IFA-9 test), so this request resolves to
// exactly fig45Params and hits the same content keys a local compile
// would mint.
func Fig45Base() canon.Request {
	return canon.Request{
		Words:      fig45Rows * fig45BPC,
		BPW:        fig45BPW,
		BPC:        fig45BPC,
		Spares:     4,
		StrapCells: 32,
	}
}

// GrowthFactorsService measures the Fig. 4 growth factors by running a
// spares-axis sweep on a bisramgend instance at baseURL instead of
// compiling locally. The returned map has the same keys as
// GrowthFactors (0 implicit at 1.0, plus 4, 8, 16), so Fig4With /
// Table2With / Table3With / WaferStudyWith produce byte-identical
// tables from either source.
func GrowthFactorsService(baseURL string, timeout time.Duration) (map[int]float64, error) {
	return growthFactorsService(baseURL, timeout, nil)
}

// GrowthFactorsServiceProgress is GrowthFactorsService with live
// progress: instead of polling, it watches the sweep's SSE event
// stream (GET /v1/sweeps/{id}/events) and forwards every frame to
// onEvent — what `experiments -server -progress` prints per point.
func GrowthFactorsServiceProgress(baseURL string, timeout time.Duration, onEvent func(sweep.Event)) (map[int]float64, error) {
	if onEvent == nil {
		onEvent = func(sweep.Event) {}
	}
	return growthFactorsService(baseURL, timeout, onEvent)
}

// growthFactorsService runs the spares-axis sweep; a non-nil onEvent
// selects the streaming wait path.
func growthFactorsService(baseURL string, timeout time.Duration, onEvent func(sweep.Event)) (map[int]float64, error) {
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	c := sweep.NewClient(baseURL)
	st, err := c.CreateSweep(sweep.Spec{
		Base: Fig45Base(),
		Axes: sweep.Axes{Spares: []int{4, 8, 16}},
	})
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "experiments: creating growth-factor sweep on %s", baseURL)
	}
	id := st.ID
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var state string
	var failed int
	if onEvent != nil {
		term, werr := c.Watch(ctx, id, onEvent)
		if werr != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, werr, "experiments: watching sweep %s", id)
		}
		state, failed = term.Summary.State, term.Summary.Failed
	} else {
		st, err = c.WaitSweep(ctx, id, 50*time.Millisecond)
		if err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "experiments: waiting for sweep %s", id)
		}
		state, failed = st.State, st.Failed
	}
	if state != "done" {
		return nil, cerr.New(cerr.CodeInternal,
			"experiments: sweep %s finished in state %q (%d failed)", id, state, failed)
	}
	res, err := c.SweepResults(id)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "experiments: fetching results of sweep %s", id)
	}
	out := map[int]float64{0: 1.0}
	for _, row := range res.Rows {
		out[row.Spares] = row.GrowthFactor
	}
	for _, s := range []int{4, 8, 16} {
		if _, ok := out[s]; !ok {
			return nil, cerr.New(cerr.CodeInternal,
				"experiments: sweep %s returned no row for %d spares", id, s)
		}
	}
	return out, nil
}
