package experiments

import (
	"fmt"
	"math"

	"repro/internal/compiler"
	"repro/internal/cost"
	"repro/internal/tech"
	"repro/internal/yield"
)

// Table1 regenerates the paper's Table I: BISR area overhead with
// four spare rows on the CDA 0.7 µm process for a range of realistic
// embedded-RAM geometries. (The scan of the paper does not reproduce
// Table I's numeric cells; the configurations here span the paper's
// "realistic embedded sizes" of 64 Kb - 4 Mb and the claim under test
// is overhead < 7 %.)
func Table1() (*Table, error) {
	t := &Table{
		ID:    "TAB1",
		Title: "BISR overhead with four spare rows (process cda07u3m1p)",
		Header: []string{"words", "bpw", "bpc", "kbit", "array_mm2",
			"bist_mm2", "bisr_mm2", "total_mm2", "overhead_pct"},
	}
	configs := []struct{ words, bpw, bpc int }{
		{2048, 32, 8},    // 64 Kb
		{4096, 32, 8},    // 128 Kb
		{4096, 64, 8},    // 256 Kb
		{8192, 64, 8},    // 512 Kb
		{8192, 128, 16},  // 1 Mb
		{16384, 128, 16}, // 2 Mb
		{16384, 256, 16}, // 4 Mb
	}
	for _, c := range configs {
		p := compiler.Params{
			Words: c.words, BPW: c.bpw, BPC: c.bpc, Spares: 4,
			BufSize: 2, StrapCells: 32, Process: tech.CDA07,
		}
		d, err := compiler.Compile(p)
		if err != nil {
			return nil, fmt.Errorf("table1 %dx%d: %w", c.words, c.bpw, err)
		}
		t.Add(c.words, c.bpw, c.bpc, c.words*c.bpw/1024,
			(d.Area.ArrayRegular+d.Area.ArraySpare)/1e6,
			d.Area.BIST/1e6, d.Area.BISR/1e6, d.Area.Total/1e6,
			d.Area.OverheadPct)
	}
	t.Note("paper claim: overhead at most 7%% for realistic array sizes; redundant rows excluded from overhead")
	return t, nil
}

// cacheYieldImprovement computes the embedded-RAM yield improvement
// factor BISR delivers for a chip, using the Fig. 4 machinery on the
// chip's cache area: defects scale with D0 times the cache silicon.
func cacheYieldImprovement(c cost.Chip, d cost.DefectModel, growth float64) float64 {
	if c.CacheFrac <= 0 {
		return 1
	}
	defects := d.D0 * c.DieMm2 * c.CacheFrac / 100.0
	m := yield.Model{
		Rows: 1024, Cols: 64, Spares: 4,
		GrowthFactor: growth, Alpha: d.Alpha,
	}
	return m.ImprovementFactor(defects)
}

// Table2 regenerates the paper's Table II: cost per good die before
// wafer testing, with and without embedded-RAM BISR (four spare
// rows), for the commercial microprocessor database. Chips on
// 2-metal processes get blank BISR entries exactly as in the paper.
func Table2() (*Table, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, err
	}
	return Table2With(gf)
}

// Table2With builds Table II from pre-measured growth factors (see
// Fig4With).
func Table2With(gf map[int]float64) (*Table, error) {
	t := &Table{
		ID:    "TAB2",
		Title: "Cost per good die with and without RAM BISR",
		Header: []string{"chip", "metals", "die_mm2", "dies/wafer",
			"yield", "die_cost", "die_cost_bisr", "ratio"},
	}
	p := cost.DefaultParams()
	dm := cost.DefaultDefects()
	for _, c := range cost.Chips() {
		imp := cacheYieldImprovement(c, dm, gf[4])
		r := cost.AnalyzeBISR(c, p, dm, imp, overheadFracFor(c))
		if !r.Feasible {
			t.Add(c.Name, c.Metals, c.DieMm2, r.Without.DiesPerWafer,
				r.Without.DieYield, r.Without.DieCost, "-", "-")
			continue
		}
		t.Add(c.Name, c.Metals, c.DieMm2, r.Without.DiesPerWafer,
			r.Without.DieYield, r.Without.DieCost, r.With.DieCost, r.DieCostRatio)
	}
	t.Note("blank entries: 2-metal processes (BISRAMGEN needs 3 metal layers)")
	t.Note("paper shape: die-cost reduction often ~2x for large-cache dies")
	return t, nil
}

// Table3 regenerates the paper's Table III: total manufacturing cost
// per packaged and tested chip, with and without RAM BISR.
func Table3() (*Table, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, err
	}
	return Table3With(gf)
}

// Table3With builds Table III from pre-measured growth factors (see
// Fig4With).
func Table3With(gf map[int]float64) (*Table, error) {
	t := &Table{
		ID:    "TAB3",
		Title: "Total manufacturing cost per packaged chip with and without RAM BISR",
		Header: []string{"chip", "die", "test+assy", "pkg+final",
			"total", "total_bisr", "reduction_pct"},
	}
	p := cost.DefaultParams()
	dm := cost.DefaultDefects()
	for _, c := range cost.Chips() {
		imp := cacheYieldImprovement(c, dm, gf[4])
		r := cost.AnalyzeBISR(c, p, dm, imp, overheadFracFor(c))
		if !r.Feasible {
			t.Add(c.Name, r.Without.DieCost, r.Without.TestAssembly,
				r.Without.PackageFinal, r.Without.Total, "-", "-")
			continue
		}
		t.Add(c.Name, r.Without.DieCost, r.Without.TestAssembly,
			r.Without.PackageFinal, r.Without.Total, r.With.Total,
			r.TotalReductionPct)
	}
	t.Note("paper band: reductions from 2.35%% (Intel486DX2) to 47.2%% (TI SuperSPARC)")
	return t, nil
}

// WaferStudy evaluates the cost story at wafer-map resolution: dies
// placed on a 200 mm wafer with a radial defect gradient (edge dies
// worse, the classic process signature). BISR lifts every zone, and
// lifts the defect-dense edge zone the most — extra good dies per
// wafer that the flat Table II/III model underestimates.
func WaferStudy() (*Table, string, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, "", err
	}
	return WaferStudyWith(gf)
}

// WaferStudyWith builds the wafer study from pre-measured growth
// factors (see Fig4With).
func WaferStudyWith(gf map[int]float64) (*Table, string, error) {
	var chip cost.Chip
	for _, c := range cost.Chips() {
		if c.Name == "TI SuperSPARC" {
			chip = c
		}
	}
	d := cost.DefaultDefects()
	imp := cacheYieldImprovement(chip, d, gf[4])
	side := math.Sqrt(chip.DieMm2)
	w := cost.NewWaferMap(chip.WaferDiamMm, side, side)
	const edge = 2.0
	t := &Table{
		ID:     "WAFER",
		Title:  "Wafer-map yield by radial zone, TI SuperSPARC die, edge-degraded defects",
		Header: []string{"zone", "dies", "yield", "yield_bisr", "gain_pct"},
	}
	zones, counts := w.ZoneYields(d, edge, chip.CacheFrac, imp)
	names := [3]string{"centre", "mid", "edge"}
	for z := 0; z < 3; z++ {
		gain := 0.0
		if zones[z][0] > 0 {
			gain = 100 * (zones[z][1] - zones[z][0]) / zones[z][0]
		}
		t.Add(names[z], counts[z], zones[z][0], zones[z][1], gain)
	}
	base, bisr := w.ExpectedGood(d, edge, chip.CacheFrac, imp)
	t.Note("expected good dies per wafer: %.1f without BISR, %.1f with (%d sites)", base, bisr, w.Count())
	return t, w.ASCII(d, edge), nil
}

// overheadFracFor returns the BISR area overhead fraction of the
// cache, from Table I's regime: smaller caches pay proportionally
// more.
func overheadFracFor(c cost.Chip) float64 {
	switch {
	case c.CacheFrac >= 0.3:
		return 0.03
	case c.CacheFrac >= 0.15:
		return 0.05
	default:
		return 0.07
	}
}
