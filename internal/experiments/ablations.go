package experiments

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/cost"
	"repro/internal/extract"
	"repro/internal/leafcell"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

// CostSensitivity sweeps the process defect density and reports the
// BISR total-cost reduction for a small-cache and a large-cache chip:
// the crossover where self-repair starts paying for its area is the
// practical adoption criterion for the paper's cost argument.
func CostSensitivity() (*Table, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ABL-COST",
		Title:  "BISR total-cost reduction vs defect density",
		Header: []string{"D0_per_cm2", "Intel486DX2_pct", "TI_SuperSPARC_pct"},
	}
	p := cost.DefaultParams()
	var c486, cSS cost.Chip
	for _, c := range cost.Chips() {
		switch c.Name {
		case "Intel486DX2":
			c486 = c
		case "TI SuperSPARC":
			cSS = c
		}
	}
	for _, d0 := range []float64{0.1, 0.2, 0.4, 0.8, 1.2, 1.6, 2.0} {
		dm := cost.DefectModel{D0: d0, Alpha: 2}
		r486 := cost.AnalyzeBISR(c486, p, dm,
			cacheYieldImprovement(c486, dm, gf[4]), 0.07)
		rSS := cost.AnalyzeBISR(cSS, p, dm,
			cacheYieldImprovement(cSS, dm, gf[4]), 0.03)
		t.Add(d0, r486.TotalReductionPct, rSS.TotalReductionPct)
	}
	t.Note("reductions grow with defect density; at very low D0 the area overhead dominates")
	return t, nil
}

// CriticalAreaStudy reproduces the §VII Khare-style argument: within
// BISRAMGEN's 6T template, the critical area for *fatal* defects
// (vdd-gnd bridges that short the global supply, which no row
// redundancy can repair) is zero for realistic spot-defect radii,
// while the row-repairable signal-short critical area grows normally.
func CriticalAreaStudy() (*Table, error) {
	t := &Table{
		ID:     "CAA",
		Title:  "Short critical area vs defect radius, 6T cell template (metal1+metal2, cda07u3m1p)",
		Header: []string{"radius_lambda", "fatal_um2", "repairable_um2", "fatal_share_pct"},
	}
	proc := tech.CDA07
	cell := leafcell.SRAM6T(proc)
	for _, rL := range []int{1, 2, 3, 4} {
		r := rL * proc.Lambda
		var fatal, rep int64
		for _, l := range tech.RoutingLayers[:2] { // metal1, metal2
			fatal += extract.CriticalArea(cell.Cell, l, r, extract.FatalPairs)
			rep += extract.CriticalArea(cell.Cell, l, r, extract.RepairablePairs)
		}
		share := 0.0
		if fatal+rep > 0 {
			share = 100 * float64(fatal) / float64(fatal+rep)
		}
		t.Add(rL, float64(fatal)/1e6, float64(rep)/1e6, share)
	}
	t.Note("fatal = vdd-gnd bridge (global supply short: unrepairable); repairable = any short involving a local signal (row redundancy absorbs it)")
	t.Note("paper §VII: the chosen 6T template keeps the fatal critical area at zero for all realistic defect radii (beyond ~5λ — over 1.7 µm — the intra-cell supply tabs eventually bridge)")
	return t, nil
}

// TestLengthTradeoff compares every implemented march algorithm on
// the axes a BIST architect trades: operations per address, total
// self-test cycles on a reference RAM (measured on the microprogrammed
// engine, both passes, all backgrounds), controller size, and a
// compact coverage score over the fault classes.
func TestLengthTradeoff() (*Table, error) {
	t := &Table{
		ID:    "ABL-TEST",
		Title: "March algorithm trade-offs (1024-word bpw=8 reference RAM)",
		Header: []string{"algorithm", "ops/addr", "cycles(2-pass)", "pla_terms",
			"states", "coverage_score"},
	}
	cfg := sram.Config{Words: 1024, BPW: 8, BPC: 4, SpareRows: 0}
	kinds := []sram.FaultKind{sram.SA0, sram.SA1, sram.TFU, sram.TFD,
		sram.SOF, sram.DRF0, sram.DRF1, sram.CFID, sram.CFIN, sram.CFST}
	bg := march.JohnsonBackgrounds(8)
	for _, alg := range march.AllTests() {
		prog, err := bist.Assemble(alg)
		if err != nil {
			return nil, err
		}
		arr, err := sram.New(cfg)
		if err != nil {
			return nil, err
		}
		eng := bist.NewEngine(prog, arr, cfg.BPW)
		stats, err := eng.Run(1 << 30)
		if err != nil {
			return nil, err
		}
		// Coverage score: mean detection over the fault classes.
		total := 0.0
		for _, k := range kinds {
			det, inj, err := coverageCase(k, alg, bg)
			if err != nil {
				return nil, err
			}
			if inj > 0 {
				total += float64(det) / float64(inj)
			}
		}
		score := 100 * total / float64(len(kinds))
		t.Add(alg.Name, alg.OpCount(), stats.Cycles, len(prog.Terms),
			prog.NumStates, fmt.Sprintf("%.0f%%", score))
	}
	t.Note("coverage score = mean detection rate across SAF/TF/SOF/DRF/CF classes with Johnson backgrounds")
	t.Note("IFA-13 buys SOF coverage for ~33%% more cycles than IFA-9; MATS+ is 2.4x cheaper but misses retention and stuck-open faults")
	return t, nil
}
