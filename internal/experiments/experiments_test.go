package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tb.Add(1, 2.5)
	tb.Add("x,y", true)
	tb.Note("n%d", 1)
	s := tb.String()
	if !strings.Contains(s, "== X: demo ==") || !strings.Contains(s, "note: n1") {
		t.Fatalf("bad text render:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("CSV quoting broken:\n%s", csv)
	}
	if !strings.Contains(csv, "a,b") {
		t.Fatal("CSV header missing")
	}
}

func TestFig4Shape(t *testing.T) {
	tb, err := Fig4(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	// At the largest defect count, the spare ordering must hold:
	// Y16 > Y8 > Y4 > Y0.
	last := tb.Rows[len(tb.Rows)-1]
	y0, y4, y8, y16 := parse(t, last[1]), parse(t, last[2]), parse(t, last[3]), parse(t, last[4])
	if !(y16 > y8 && y8 > y4 && y4 > y0) {
		t.Fatalf("Fig4 ordering violated at high defects: %v", last)
	}
	// At zero defects all yields are ~1.
	first := tb.Rows[0]
	for i := 1; i <= 4; i++ {
		if v := parse(t, first[i]); v < 0.97 {
			t.Fatalf("zero-defect yield %v", first)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tb, err := Fig5(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Early (5y): fewer spares better among BISR configs. Late (30y):
	// more spares better.
	early := tb.Rows[1]
	r4e, r8e, r16e := parse(t, early[2]), parse(t, early[3]), parse(t, early[4])
	if !(r4e > r8e && r8e > r16e) {
		t.Fatalf("early ordering violated: %v", early)
	}
	late := tb.Rows[len(tb.Rows)-1]
	r0l, r4l, r8l, r16l := parse(t, late[1]), parse(t, late[2]), parse(t, late[3]), parse(t, late[4])
	if !(r16l > r8l && r8l > r4l && r4l > r0l) {
		t.Fatalf("late ordering violated: %v", late)
	}
	// A crossover note must be present and in a plausible multi-year
	// range.
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "4-vs-8-spare crossover") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing crossover note: %v", tb.Notes)
	}
}

func TestTable1OverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several large arrays")
	}
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatal("too few configurations")
	}
	prev := 1e9
	for _, r := range tb.Rows {
		kbit := parse(t, r[3])
		ov := parse(t, r[8])
		if kbit >= 64 && ov > 7.0 {
			t.Errorf("%s Kb: overhead %.2f%% exceeds the paper's 7%% claim", r[3], ov)
		}
		_ = prev
	}
	// Overhead decreases from the smallest to the largest config.
	first := parse(t, tb.Rows[0][8])
	lastV := parse(t, tb.Rows[len(tb.Rows)-1][8])
	if !(lastV < first) {
		t.Errorf("overhead should fall with capacity: %.2f -> %.2f", first, lastV)
	}
}

func TestTables2And3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles growth-factor layouts")
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	blank2, improved := 0, 0
	for _, r := range t2.Rows {
		if r[6] == "-" {
			blank2++
			continue
		}
		if parse(t, r[7]) > 1.0 {
			improved++
		}
	}
	if blank2 == 0 {
		t.Error("expected blank entries for 2-metal chips")
	}
	if improved == 0 {
		t.Error("no chip showed a die-cost improvement")
	}
	// Table III: SuperSPARC reduction must exceed 486DX2's, and the
	// band must be wide (the paper spans 2.35%..47.2%).
	var rSS, r486 float64
	var maxRed float64
	for _, r := range t3.Rows {
		if r[6] == "-" {
			continue
		}
		red := parse(t, r[6])
		if red > maxRed {
			maxRed = red
		}
		switch r[0] {
		case "TI SuperSPARC":
			rSS = red
		case "Intel486DX2":
			r486 = red
		}
	}
	if !(rSS > r486) {
		t.Errorf("SuperSPARC %.2f%% should beat 486DX2 %.2f%%", rSS, r486)
	}
	if !(r486 > 0 && r486 < 15) {
		t.Errorf("486DX2 reduction %.2f%% outside the small-cache band", r486)
	}
	if !(maxRed > 10) {
		t.Errorf("largest reduction %.2f%% implausibly small", maxRed)
	}
}

func TestCoverageClaims(t *testing.T) {
	tb, err := Coverage()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{"MATS+": 1, "March C-": 2, "IFA-9": 3, "IFA-13": 4, "IFA-9(single bg)": 5}
	rows := map[string][]string{}
	for _, r := range tb.Rows {
		rows[r[0]] = r
	}
	mustFull := func(fault, test string) {
		t.Helper()
		v := parse(t, rows[fault][col[test]])
		if v < 100 {
			t.Errorf("%s under %s: %.0f%%, want 100%%", fault, test, v)
		}
	}
	for _, f := range []string{"SA0", "SA1", "TFU", "TFD"} {
		mustFull(f, "IFA-9")
		mustFull(f, "IFA-13")
	}
	for _, f := range []string{"DRF0", "DRF1"} {
		mustFull(f, "IFA-9")
		// March C- has no retention delay: must miss them.
		if v := parse(t, rows[f][col["March C-"]]); v > 0 {
			t.Errorf("March C- should miss %s, got %.0f%%", f, v)
		}
	}
	// IFA-13 adds SOF coverage over IFA-9.
	sof9 := parse(t, rows["SOF"][col["IFA-9"]])
	sof13 := parse(t, rows["SOF"][col["IFA-13"]])
	if !(sof13 > sof9) {
		t.Errorf("IFA-13 SOF %.0f%% should beat IFA-9 %.0f%%", sof13, sof9)
	}
	if sof13 < 100 {
		t.Errorf("IFA-13 SOF coverage %.0f%%, want 100%%", sof13)
	}
	// Johnson backgrounds beat the single background on intra-word
	// couplings.
	intra := rows["CFID(intra-word)"]
	j := parse(t, intra[col["IFA-9"]])
	s := parse(t, intra[col["IFA-9(single bg)"]])
	if !(j > s) {
		t.Errorf("Johnson %.0f%% should beat single background %.0f%% on intra-word CFID", j, s)
	}
	if j < 100 {
		t.Errorf("Johnson intra-word coverage %.0f%%, want 100%%", j)
	}
}

func TestRepairComparison(t *testing.T) {
	tb, err := RepairComparison(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	// At 1 fault everyone repairs; in the 2-4 fault band the TLB's
	// row redundancy must strictly beat Sawada's single-address
	// register (at very high fault counts both collapse to 0%).
	for _, r := range tb.Rows {
		nf := parse(t, r[0])
		tlb := parse(t, r[1])
		iter := parse(t, r[2])
		saw := parse(t, r[3])
		if nf == 1 && tlb < 100 {
			t.Errorf("single fault must always repair: %v", r)
		}
		if nf >= 2 && nf <= 4 && !(tlb > saw) {
			t.Errorf("TLB should beat Sawada at %v faults: %v", nf, r)
		}
		if nf >= 2 && tlb < saw {
			t.Errorf("TLB worse than Sawada at %v faults: %v", nf, r)
		}
		if iter < tlb {
			t.Errorf("iterated repair can't be worse than single-pass: %v", r)
		}
	}
}

func TestWaferStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles growth-factor layouts")
	}
	tb, art, err := WaferStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("zones %d", len(tb.Rows))
	}
	// Radial base-yield ordering and BISR gain in every zone.
	yc := parse(t, tb.Rows[0][2])
	ye := parse(t, tb.Rows[2][2])
	if !(yc > ye) {
		t.Fatalf("centre %v should out-yield edge %v", yc, ye)
	}
	for _, r := range tb.Rows {
		if parse(t, r[4]) <= 0 {
			t.Errorf("zone %s: no BISR gain", r[0])
		}
	}
	if !strings.ContainsAny(art, "0123456789") {
		t.Fatal("wafer map art empty")
	}
}

func TestClustering(t *testing.T) {
	tb, err := Clustering(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	// At the mid defect counts the clustered repair rate dominates.
	dominated := 0
	for _, r := range tb.Rows {
		u := parse(t, r[1])
		c := parse(t, r[2])
		if c >= u {
			dominated++
		}
	}
	if dominated < len(tb.Rows)-1 {
		t.Fatalf("clustered defects should repair at least as often: %v", tb.Rows)
	}
}

func TestCorners(t *testing.T) {
	tb, err := Corners()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	fast := parse(t, tb.Rows[0][1])
	typ := parse(t, tb.Rows[1][1])
	slow := parse(t, tb.Rows[2][1])
	if !(fast < typ && typ < slow) {
		t.Fatalf("corner ordering wrong: %v %v %v", fast, typ, slow)
	}
	for _, r := range tb.Rows {
		if r[4] != "yes" {
			t.Errorf("TLB not maskable at %s corner", r[0])
		}
	}
}

func TestGateLevelExperiment(t *testing.T) {
	tb, err := GateLevel(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		// Perfect agreement between gate-level and behavioural.
		var a, n int
		if _, err := fmt.Sscanf(r[1], "%d/%d", &a, &n); err != nil {
			t.Fatal(err)
		}
		if a != n {
			t.Errorf("disagreement at %s faults: %s", r[0], r[1])
		}
	}
	// Zero faults: always repaired.
	if parse(t, tb.Rows[0][2]) != 100 {
		t.Errorf("fault-free gate-level rate %s", tb.Rows[0][2])
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	tb, err := MonteCarloYield(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		sim := parse(t, r[1])
		ana := parse(t, r[2])
		if diff := sim - ana; diff < -35 || diff > 35 {
			t.Errorf("defects %s: simulated %.0f%% vs analytic %.0f%% diverge", r[0], sim, ana)
		}
	}
}

func TestStatisticalYieldTable(t *testing.T) {
	tb, err := StatisticalYield(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "STATY" || len(tb.Rows) != 5 {
		t.Fatalf("table %s with %d rows", tb.ID, len(tb.Rows))
	}
	prevFail := -1.0
	for _, r := range tb.Rows {
		fail := parse(t, r[1])
		if fail < 0 || fail > 1 {
			t.Fatalf("fail prob out of range: %v", r)
		}
		// Failure probability must grow with sigma (monotone rows).
		if fail < prevFail {
			t.Errorf("fail prob not monotone in sigma: %v", tb.Rows)
		}
		prevFail = fail
		mcY := parse(t, r[4])
		cfY := parse(t, r[5])
		if mcY < 0 || mcY > 1 || cfY < 0 || cfY > 1 {
			t.Fatalf("yields out of range: %v", r)
		}
		// The two yield formulas see the same expected fault count;
		// (1-p)^n vs e^{-pn} agree to a few percent everywhere.
		if diff := mcY - cfY; diff < -0.05 || diff > 0.05 {
			t.Errorf("sigma %s: MC yield %.4f vs closed form %.4f diverge", r[0], mcY, cfY)
		}
	}
	// Seeded: regeneration is byte-identical.
	tb2, err := StatisticalYield(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != tb2.String() {
		t.Fatal("STATY table not reproducible for the same seed")
	}
}

func TestCostSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles growth-factor layouts")
	}
	tb, err := CostSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// SuperSPARC reduction must grow monotonically with defect
	// density and dominate the 486 at every point.
	prevSS := -100.0
	for _, r := range tb.Rows {
		r486 := parse(t, r[1])
		rSS := parse(t, r[2])
		if rSS < prevSS {
			t.Errorf("SuperSPARC reduction not monotone: %v", tb.Rows)
		}
		prevSS = rSS
		if rSS < r486 {
			t.Errorf("large cache should gain at least as much: %v", r)
		}
	}
	// High density end must show a large benefit.
	if last := parse(t, tb.Rows[len(tb.Rows)-1][2]); last < 15 {
		t.Errorf("SuperSPARC at D0=2.0 gains only %.1f%%", last)
	}
}

func TestCriticalAreaStudy(t *testing.T) {
	tb, err := CriticalAreaStudy()
	if err != nil {
		t.Fatal(err)
	}
	// With the supply rails at opposite cell edges, the vdd-gnd fatal
	// critical area is exactly zero at every listed radius — the
	// paper's near-zero-fatal-critical-area template property.
	for _, r := range tb.Rows {
		if fatal := parse(t, r[1]); fatal != 0 {
			t.Errorf("fatal CA at %sλ = %s, want 0", r[0], r[1])
		}
	}
	// Signal CA is monotone in radius.
	prev := -1.0
	for _, r := range tb.Rows {
		v := parse(t, r[2])
		if v < prev {
			t.Errorf("signal CA not monotone: %v", tb.Rows)
		}
		prev = v
	}
}

func TestTestLengthTradeoff(t *testing.T) {
	tb, err := TestLengthTradeoff()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tb.Rows {
		rows[r[0]] = r
	}
	// IFA-13 runs longer than IFA-9 which runs longer than MATS+.
	c9 := parse(t, rows["IFA-9"][2])
	c13 := parse(t, rows["IFA-13"][2])
	cm := parse(t, rows["MATS+"][2])
	if !(c13 > c9 && c9 > cm) {
		t.Fatalf("cycle ordering wrong: %v %v %v", c13, c9, cm)
	}
	// Coverage ordering: IFA-13 >= IFA-9 > MATS+.
	s9 := parse(t, rows["IFA-9"][5])
	s13 := parse(t, rows["IFA-13"][5])
	sm := parse(t, rows["MATS+"][5])
	if !(s13 >= s9 && s9 > sm) {
		t.Fatalf("coverage ordering wrong: %v %v %v", s13, s9, sm)
	}
	if s13 < 99 {
		t.Fatalf("IFA-13 score %.0f%%, want ~100%%", s13)
	}
}

func TestYieldAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles growth-factor layouts")
	}
	tb, err := YieldAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if parse(t, r[2]) < parse(t, r[1])-1e-9 {
			t.Errorf("iterated yield below strict: %v", r)
		}
	}
}
