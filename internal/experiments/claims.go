package experiments

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/compiler"
	"repro/internal/march"
	"repro/internal/mcyield"
	"repro/internal/sram"
	"repro/internal/tech"
	"repro/internal/yield"
)

// TLBDelay reproduces the Section VI timing claim: the TLB match and
// map delay on the 0.7 µm process is of the order of a nanosecond
// with four spare rows — at least an order of magnitude below the RAM
// access time — and grows with the spare count, which is why only
// small TLBs are guaranteed maskable.
func TLBDelay() (*Table, error) {
	t := &Table{
		ID:     "TLBD",
		Title:  "TLB match+map delay vs spares and process (paper: ~1.2 ns at 0.7 um, 4 spares)",
		Header: []string{"process", "spares", "tlb_ns", "access_ns", "ratio", "maskable"},
	}
	for _, proc := range []*tech.Process{tech.CDA05, tech.MOS06, tech.CDA07} {
		for _, s := range []int{4, 8, 16} {
			p := compiler.Params{
				Words: 4096, BPW: 32, BPC: 8, Spares: s,
				BufSize: 2, StrapCells: 32, Process: proc,
			}
			d, err := compiler.Compile(p)
			if err != nil {
				return nil, err
			}
			t.Add(proc.Name, s, d.Timing.TLBNs, d.Timing.AccessNs,
				d.Timing.AccessNs/d.Timing.TLBNs, d.Timing.TLBMaskable)
		}
	}
	t.Note("paper: delay penalty maskable by overlapping with precharge/address-register phase for 1-4 spares")
	return t, nil
}

// Corners signs off the §VI timing claims across process corners: the
// TLB delay must remain maskable even at the slow corner, where every
// path degrades together.
func Corners() (*Table, error) {
	t := &Table{
		ID:     "CORNERS",
		Title:  "Timing sign-off across process corners (16-kbyte array, 4 spares, cda07u3m1p)",
		Header: []string{"corner", "access_ns", "tlb_ns", "ratio", "maskable"},
	}
	for _, corner := range []string{"fast", "typ", "slow"} {
		proc, err := tech.CDA07.Corner(corner)
		if err != nil {
			return nil, err
		}
		d, err := compiler.Compile(compiler.Params{
			Words: 4096, BPW: 32, BPC: 8, Spares: 4,
			BufSize: 2, StrapCells: 32, Process: proc,
		})
		if err != nil {
			return nil, err
		}
		t.Add(corner, d.Timing.AccessNs, d.Timing.TLBNs,
			d.Timing.AccessNs/d.Timing.TLBNs, d.Timing.TLBMaskable)
	}
	t.Note("TLB masking must hold at the slow corner: both paths degrade together, so the ratio is corner-stable")
	return t, nil
}

// Controller reproduces the Section VI controller claims: the
// combined test-and-repair controller is a handful of flip-flops
// driving a small PLA, and its area is a vanishing fraction of a
// 16-kbyte RAM.
func Controller() (*Table, error) {
	t := &Table{
		ID:     "CTRL",
		Title:  "Test-and-repair controller size (paper: 59 states, 6 flip-flops, <0.1% of a 16-kbyte RAM)",
		Header: []string{"algorithm", "states", "flipflops", "terms", "pla_pct_of_16kbyte_array"},
	}
	for _, alg := range []march.Test{march.IFA9(), march.IFA13(), march.MATSPlus(), march.MarchCMinus()} {
		p := compiler.Params{
			Words: 16384, BPW: 8, BPC: 8, Spares: 4,
			BufSize: 2, StrapCells: 32, Process: tech.CDA07,
			Test: alg,
		}
		d, err := compiler.Compile(p)
		if err != nil {
			return nil, err
		}
		pct := 100 * float64(d.Macros["trpla"].Bounds().Area()) / 1e6 / d.Area.ArrayRegular
		t.Add(alg.Name, d.Prog.NumStates, d.Prog.StateBits, len(d.Prog.Terms), pct)
	}
	t.Note("our linear microprogram encoding reaches fewer states than the paper's 59; both fit the 6-flip-flop budget")
	return t, nil
}

// Clustering validates the Stapper-clustering intuition end to end:
// at the same mean defect count, clustered defects concentrate into
// fewer rows, so the full BIST+BISR flow repairs clustered arrays
// more often than uniformly-defective ones — the simulation-side
// counterpart of Stapper's negative-binomial yield advantage.
func Clustering(trials int, seed int64) (*Table, error) {
	if trials <= 0 {
		trials = 40
	}
	t := &Table{
		ID:     "CLUSTER",
		Title:  "Repair rate: uniform vs clustered defects (64-word array, 4 spares)",
		Header: []string{"defects", "uniform", "clustered"},
	}
	cfg := sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 4}
	rng := rand.New(rand.NewSource(seed))
	for _, nd := range []int{4, 6, 8, 12} {
		var okU, okC int
		for trial := 0; trial < trials; trial++ {
			aU, err := sram.New(cfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < nd; i++ {
				k := sram.SA0
				if rng.Intn(2) == 1 {
					k = sram.SA1
				}
				_ = aU.Inject(sram.CellAddr{Row: rng.Intn(cfg.TotalRows()), Col: rng.Intn(cfg.Cols())},
					sram.Fault{Kind: k})
			}
			aC, err := sram.New(cfg)
			if err != nil {
				return nil, err
			}
			aC.InjectClustered(nd, 4, 1, rng)
			outU, err := bisr.NewController(bisr.NewRAM(aU)).Run()
			if err != nil {
				return nil, err
			}
			outC, err := bisr.NewController(bisr.NewRAM(aC)).Run()
			if err != nil {
				return nil, err
			}
			if outU.Repaired {
				okU++
			}
			if outC.Repaired {
				okC++
			}
		}
		t.Add(nd, fmt.Sprintf("%.0f%%", 100*float64(okU)/float64(trials)),
			fmt.Sprintf("%.0f%%", 100*float64(okC)/float64(trials)))
	}
	t.Note("clustered defects hit fewer distinct rows, so row redundancy repairs them more often — the simulated face of Stapper's clustering advantage")
	return t, nil
}

// GateLevel cross-checks the gate-level realisation of the complete
// BIST+BISR block (structural TRPLA + ADDGEN + DATAGEN + comparator +
// TLB, simulated gate by gate) against the behavioural controller on
// identical fault patterns, and reports the netlist size.
func GateLevel(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "GATE",
		Title:  "Gate-level BIST+BISR vs behavioural controller (32-word array, 4 spares)",
		Header: []string{"faults", "agree", "gl_repair_rate", "gates", "dffs", "gl_cycles"},
	}
	if trials <= 0 {
		trials = 8
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 4}
	// Every trial uses the same geometry and march program, so the
	// gate-level netlist is elaborated once and Rerun per trial.
	prog, err := bist.Assemble(march.IFA9())
	if err != nil {
		return nil, err
	}
	seedArr, err := sram.New(cfg)
	if err != nil {
		return nil, err
	}
	g, err := bisr.NewGateLevel(seedArr, prog)
	if err != nil {
		return nil, err
	}
	for _, nf := range []int{0, 1, 2, 4, 6} {
		agree, repaired := 0, 0
		var gates, dffs int
		var cycles int64
		for trial := 0; trial < trials; trial++ {
			type fp struct {
				cell sram.CellAddr
				kind sram.FaultKind
			}
			pattern := make([]fp, nf)
			for i := range pattern {
				k := sram.SA0
				if rng.Intn(2) == 1 {
					k = sram.SA1
				}
				pattern[i] = fp{cell: sram.CellAddr{Row: rng.Intn(cfg.Rows()), Col: rng.Intn(cfg.Cols())}, kind: k}
			}
			build := func() *sram.Array {
				a, _ := sram.New(cfg) // cfg is a validated literal
				for _, f := range pattern {
					_ = a.Inject(f.cell, sram.Fault{Kind: f.kind})
				}
				return a
			}
			if err := g.Rerun(build(), 4_000_000); err != nil {
				return nil, err
			}
			out, err := bisr.NewController(bisr.NewRAM(build())).Run()
			if err != nil {
				return nil, err
			}
			if g.Repaired() == out.Repaired {
				agree++
			}
			if g.Repaired() {
				repaired++
			}
			gates, dffs = g.GateCount()
			cycles = g.Cycles
		}
		t.Add(nf, fmt.Sprintf("%d/%d", agree, trials),
			fmt.Sprintf("%.0f%%", 100*float64(repaired)/float64(trials)),
			gates, dffs, cycles)
	}
	t.Note("agree = gate-level and behavioural reach the same repair verdict on the same fault pattern")
	return t, nil
}

// covCfg is the shared geometry of the coverage experiments: a 64-word,
// bpw=8 column-muxed array, small enough that the sampled fault sites
// below cover it densely.
var covCfg = sram.Config{Words: 64, BPW: 8, BPC: 4, SpareRows: 0}

// faultSite is one (victim, fault) position of a coverage campaign.
type faultSite struct {
	victim sram.CellAddr
	fault  sram.Fault
}

// batchCoverage evaluates a detection campaign bit-parallel: the
// ordered site list is packed 64 lanes at a time into BatchArrays and
// each chunk runs the test once, so 64 single-fault machines share one
// march pass. Detection verdicts are identical to injecting each site
// into its own scalar Array (the differential test in
// claims_batch_test.go pins this), so the COV table is byte-identical
// to the scalar implementation it replaced.
func batchCoverage(cfg sram.Config, sites []faultSite, test march.Test, backgrounds []uint64) (detected, injected int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	for start := 0; start < len(sites); start += sram.BatchLanes {
		end := start + sram.BatchLanes
		if end > len(sites) {
			end = len(sites)
		}
		b, err := sram.NewBatch(cfg)
		if err != nil {
			return 0, 0, err
		}
		var active uint64
		for lane, s := range sites[start:end] {
			// An uninjectable site is skipped and uncounted, exactly as
			// the scalar loop skipped it.
			if err := b.Inject(lane, s.victim, s.fault); err != nil {
				continue
			}
			active |= 1 << uint(lane)
			injected++
		}
		if active == 0 {
			continue
		}
		det := march.RunBatch(b, test, backgrounds, cfg.BPW)
		detected += bits.OnesCount64(det & active)
	}
	return detected, injected, nil
}

// coverageSites samples the single-fault positions of one kind across
// the array: every 2nd row, every 3rd column (full space for the small
// array would be 512 cells x kinds x tests; the stride keeps position
// diversity at a fraction of the cost).
func coverageSites(kind sram.FaultKind) []faultSite {
	cfg := covCfg
	sites := make([]faultSite, 0, cfg.Rows()*cfg.Cols()/6)
	for row := 0; row < cfg.Rows(); row += 2 {
		for col := 0; col < cfg.Cols(); col += 3 {
			f := sram.Fault{Kind: kind}
			switch kind {
			case sram.CFID, sram.CFIN, sram.CFST:
				ar := row + 1
				if ar >= cfg.Rows() {
					ar = row - 1
				}
				f.Aggressor = sram.CellAddr{Row: ar, Col: col}
				f.AggrRise = (row+col)%2 == 0
				f.Forced = col%2 == 0
			}
			sites = append(sites, faultSite{victim: sram.CellAddr{Row: row, Col: col}, fault: f})
		}
	}
	return sites
}

// coverageCase injects every single fault of one kind across a sample
// of cells and reports the detection rate of a test/background
// combination, evaluating 64 fault machines per march pass.
func coverageCase(kind sram.FaultKind, test march.Test, backgrounds []uint64) (detected, injected int, err error) {
	return batchCoverage(covCfg, coverageSites(kind), test, backgrounds)
}

// intraWordSites samples couplings between bits of the same word — the
// case the paper's Johnson backgrounds exist for.
func intraWordSites() []faultSite {
	cfg := covCfg
	var sites []faultSite
	for row := 0; row < cfg.Rows(); row += 3 {
		for vb := 0; vb < cfg.BPW; vb++ {
			ab := (vb + 3) % cfg.BPW
			sites = append(sites, faultSite{
				victim: sram.CellAddr{Row: row, Col: vb*cfg.BPC + 1},
				fault: sram.Fault{
					Kind:      sram.CFID,
					Aggressor: sram.CellAddr{Row: row, Col: ab*cfg.BPC + 1},
					AggrRise:  vb%2 == 0,
					Forced:    vb%3 == 0,
				},
			})
		}
	}
	return sites
}

// intraWordCoverage measures detection of intra-word couplings with
// the same bit-parallel engine as coverageCase.
func intraWordCoverage(test march.Test, backgrounds []uint64) (detected, injected int, err error) {
	return batchCoverage(covCfg, intraWordSites(), test, backgrounds)
}

// Coverage reproduces the Section V fault-coverage claims: IFA-9
// detects stuck-at, transition, retention and state-coupling faults;
// IFA-13's read-after-write adds stuck-open coverage; and the Johnson
// multi-background DATAGEN catches intra-word couplings that a
// single-background generator (Chen-Sunada style) misses.
func Coverage() (*Table, error) {
	t := &Table{
		ID:     "COV",
		Title:  "Fault coverage by test algorithm and data backgrounds (64-word, bpw=8 array)",
		Header: []string{"fault", "MATS+", "March C-", "IFA-9", "IFA-13", "IFA-9(single bg)"},
	}
	tests := []march.Test{march.MATSPlus(), march.MarchCMinus(), march.IFA9(), march.IFA13()}
	bg := march.JohnsonBackgrounds(8)
	kinds := []sram.FaultKind{sram.SA0, sram.SA1, sram.TFU, sram.TFD,
		sram.SOF, sram.DRF0, sram.DRF1, sram.CFID, sram.CFIN, sram.CFST}
	for _, k := range kinds {
		row := []interface{}{k.String()}
		for _, test := range tests {
			det, inj, err := coverageCase(k, test, bg)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(det, inj))
		}
		det, inj, err := coverageCase(k, march.IFA9(), march.SingleBackground())
		if err != nil {
			return nil, err
		}
		row = append(row, pct(det, inj))
		t.Add(row...)
	}
	// Intra-word coupling: the Johnson-vs-single-background ablation.
	rowJ := []interface{}{"CFID(intra-word)"}
	for _, test := range tests {
		det, inj, err := intraWordCoverage(test, bg)
		if err != nil {
			return nil, err
		}
		rowJ = append(rowJ, pct(det, inj))
	}
	detS, injS, err := intraWordCoverage(march.IFA9(), march.SingleBackground())
	if err != nil {
		return nil, err
	}
	rowJ = append(rowJ, pct(detS, injS))
	t.Add(rowJ...)
	t.Note("IFA-13 = IFA-9 + read-after-write: adds SOF coverage")
	t.Note("Johnson backgrounds strictly dominate the single background on intra-word couplings")
	return t, nil
}

func pct(det, inj int) string {
	if inj == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(det)/float64(inj))
}

// RepairComparison is the baseline ablation: BISRAMGEN's TLB versus
// Sawada's single fail-address register and Chen-Sunada's
// two-capture-per-subblock scheme, on identical random fault
// patterns, plus the compare-latency difference the paper stresses.
func RepairComparison(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "BASE",
		Title:  "Repair success rate vs prior schemes (64-word array, random single-cell faults)",
		Header: []string{"faults", "BISRAMGEN(4sp)", "BISRAMGEN(2k-pass)", "Sawada'89", "ChenSunada'93", "tlb_cmp_ops", "cs_cmp_ops(max)"},
	}
	if trials <= 0 {
		trials = 40
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 4}
	for _, nf := range []int{1, 2, 3, 4, 6, 8} {
		var okTLB, okIter, okSaw, okCS int
		for trial := 0; trial < trials; trial++ {
			// One shared fault pattern per trial.
			type fp struct {
				cell sram.CellAddr
				kind sram.FaultKind
			}
			pattern := make([]fp, nf)
			for i := range pattern {
				k := sram.SA0
				if rng.Intn(2) == 1 {
					k = sram.SA1
				}
				pattern[i] = fp{
					cell: sram.CellAddr{Row: rng.Intn(cfg.Rows()), Col: rng.Intn(cfg.Cols())},
					kind: k,
				}
			}
			build := func() *sram.Array {
				a, _ := sram.New(cfg) // cfg is a validated literal
				for _, f := range pattern {
					_ = a.Inject(f.cell, sram.Fault{Kind: f.kind})
				}
				return a
			}
			// BISRAMGEN single 2-pass run.
			ram := bisr.NewRAM(build())
			out, err := bisr.NewController(ram).Run()
			if err != nil {
				return nil, err
			}
			if out.Repaired {
				okTLB++
			}
			// Iterated.
			ram2 := bisr.NewRAM(build())
			ctl := bisr.NewController(ram2)
			ctl.MaxIterations = 4
			out2, err := ctl.Run()
			if err != nil {
				return nil, err
			}
			if out2.Repaired {
				okIter++
			}
			// Sawada: word-granular, one address.
			res := march.Run(build(), march.IFA9(), march.JohnsonBackgrounds(4), 4)
			saw := bisr.NewSawada()
			sawOK := true
			for _, ad := range res.FailedAddrs() {
				if !saw.Register(ad) {
					sawOK = false
				}
			}
			if sawOK && saw.Repaired() {
				okSaw++
			}
			// Chen-Sunada: 16-word subblocks, 1 spare block.
			cs, err := bisr.NewChenSunada(bisr.ChenSunadaConfig{Words: 64, SubblockWords: 16, SpareBlocks: 1})
			if err != nil {
				return nil, err
			}
			for _, ad := range res.FailedAddrs() {
				cs.Register(ad)
			}
			if cs.Resolve() {
				okCS++
			}
		}
		rate := func(n int) string { return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(trials)) }
		t.Add(nf, rate(okTLB), rate(okIter), rate(okSaw), rate(okCS),
			bisr.TLBCompareOps(), 2)
	}
	t.Note("TLB compares all entries in parallel (1 op); Chen-Sunada compares its two capture blocks sequentially")
	return t, nil
}

// YieldAblation quantifies the 2k-pass extension: yield under the
// strict goodness criterion versus the iterated criterion that
// replaces faulty spares.
func YieldAblation() (*Table, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ABL-YIELD",
		Title:  "Strict vs iterated (2k-pass) repairability yield, 8 spares",
		Header: []string{"defects", "strict", "iterated", "gain_pct"},
	}
	m := yield.Model{Rows: fig45Rows, Cols: 16, Spares: 8, GrowthFactor: gf[8]}
	for _, n := range []float64{2, 5, 10, 15, 20, 30} {
		s := m.YieldBISR(n)
		it := m.YieldBISRIterated(n)
		gain := 0.0
		if s > 0 {
			gain = 100 * (it - s) / s
		}
		t.Add(n, s, it, gain)
	}
	t.Note("the iterated flow repairs faults within the spares themselves (Section VI's 2k-pass algorithm)")
	return t, nil
}

// MonteCarloYield validates the analytic Fig. 4 model against the
// actual BIST/BISR machinery: defects are thrown at simulated arrays,
// the full two-pass self-test-and-repair runs, and the empirical
// repair rate is compared with the analytic prediction.
func MonteCarloYield(trials int, seed int64) (*Table, error) {
	if trials <= 0 {
		trials = 30
	}
	t := &Table{
		ID:     "MC",
		Title:  "Monte-Carlo repair rate vs analytic model (64-word array, 4 spares)",
		Header: []string{"defects", "simulated", "analytic"},
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 4}
	model := yield.Model{Rows: cfg.Rows(), Cols: cfg.Cols(), Spares: 4, GrowthFactor: 1}
	for _, nd := range []int{1, 2, 4, 6, 8} {
		ok := 0
		for trial := 0; trial < trials; trial++ {
			a, err := sram.New(cfg)
			if err != nil {
				return nil, err
			}
			// Poisson-like: nd stuck-at defects at uniform cells
			// across regular AND spare rows (growth handled by the
			// total row count).
			for i := 0; i < nd; i++ {
				k := sram.SA0
				if rng.Intn(2) == 1 {
					k = sram.SA1
				}
				_ = a.Inject(sram.CellAddr{
					Row: rng.Intn(cfg.TotalRows()), Col: rng.Intn(cfg.Cols()),
				}, sram.Fault{Kind: k})
			}
			ram := bisr.NewRAM(a)
			out, err := bisr.NewController(ram).Run()
			if err != nil {
				return nil, err
			}
			if out.Repaired {
				ok++
			}
		}
		// Analytic: scale defects to the regular-array axis the model
		// uses (defects here land on total rows including spares).
		nEff := float64(nd) * float64(cfg.Rows()) / float64(cfg.TotalRows())
		t.Add(nd, fmt.Sprintf("%.0f%%", 100*float64(ok)/float64(trials)),
			fmt.Sprintf("%.0f%%", 100*model.YieldBISR(nEff)))
	}
	t.Note("simulated = full microprogrammed BIST + TLB repair; analytic = Section VII binomial model")
	return t, nil
}

// StatisticalYield puts the two yield views side by side: the seeded
// Monte-Carlo parametric estimate (per-cell Vth/β variation classified
// through the SPICE solver, importance-sampled into the tail) against
// the closed-form Poisson defect model fed the SAME expected fault
// count. Where the views agree, the binomial machinery of Section VII
// is a faithful stand-in for device-level variation; where sigma grows,
// the table shows the parametric tail the defect model cannot see.
func StatisticalYield(samples int, seed int64) (*Table, error) {
	if samples <= 0 {
		samples = 2000
	}
	const cells = 128 * 128 // a 16 Kb array, the paper's working size class
	t := &Table{
		ID:    "STATY",
		Title: fmt.Sprintf("Statistical (Monte-Carlo) vs closed-form yield, %d-cell array", cells),
		Header: []string{"sigma", "fail_prob", "std_err", "sigma_level",
			"mc_array_yield", "closed_form_yield", "delta_pct"},
	}
	closed := yield.Model{Rows: 128, Cols: 128, GrowthFactor: 1}
	for _, sigma := range []float64{0.08, 0.10, 0.12, 0.15, 0.20} {
		res, err := mcyield.Estimate(context.Background(), mcyield.Config{
			Process: tech.CDA07,
			Samples: samples,
			Sigma:   sigma,
			Shift:   mcyield.DefaultShift,
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		mcY := mcyield.ArrayYield(res.FailProb, cells)
		// The closed-form model speaks "expected defects in the array";
		// the MC failure probability implies exactly that count.
		cfY := closed.YieldNoRepair(res.FailProb * cells)
		delta := 0.0
		if cfY > 0 {
			delta = 100 * (mcY - cfY) / cfY
		}
		t.Add(sigma, fmt.Sprintf("%.3g", res.FailProb), fmt.Sprintf("%.2g", res.StdErr),
			fmt.Sprintf("%.2f", res.SigmaLevel),
			fmt.Sprintf("%.4f", mcY), fmt.Sprintf("%.4f", cfY),
			fmt.Sprintf("%+.2f", delta))
	}
	t.Note("mc = importance-sampled 6T-cell Monte-Carlo (internal/mcyield, seeded); closed form = Poisson at the MC-implied defect count")
	return t, nil
}
