package experiments

import (
	"strings"
	"testing"

	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/march"
	"repro/internal/sram"
)

// scalarCoverage is the retired scalar implementation of a coverage
// campaign, kept verbatim as the reference the bit-parallel rewrite is
// pinned against: one fresh Array and one full march run per site.
func scalarCoverage(cfg sram.Config, sites []faultSite, test march.Test, backgrounds []uint64) (detected, injected int) {
	for _, s := range sites {
		a := sram.MustNew(cfg)
		if err := a.Inject(s.victim, s.fault); err != nil {
			continue
		}
		injected++
		if !march.Run(a, test, backgrounds, cfg.BPW).Pass() {
			detected++
		}
	}
	return detected, injected
}

// TestCoverageCaseDifferential requires the batch-evaluated coverage
// campaigns to report exactly the scalar counts for every FaultKind x
// test x background combination the COV table uses — the guarantee
// that makes the table byte-identical across the rewrite.
func TestCoverageCaseDifferential(t *testing.T) {
	tests := []march.Test{march.MATSPlus(), march.MarchCMinus(), march.IFA9(), march.IFA13()}
	bgSets := [][]uint64{march.JohnsonBackgrounds(covCfg.BPW), march.SingleBackground()}
	for _, kind := range []sram.FaultKind{sram.SA0, sram.SA1, sram.TFU, sram.TFD,
		sram.SOF, sram.DRF0, sram.DRF1, sram.CFID, sram.CFIN, sram.CFST} {
		sites := coverageSites(kind)
		for _, test := range tests {
			for bi, bgs := range bgSets {
				wantDet, wantInj := scalarCoverage(covCfg, sites, test, bgs)
				gotDet, gotInj, err := coverageCase(kind, test, bgs)
				if err != nil {
					t.Fatal(err)
				}
				if gotDet != wantDet || gotInj != wantInj {
					t.Errorf("%s/%s/bg%d: batch %d/%d, scalar %d/%d",
						kind, test.Name, bi, gotDet, gotInj, wantDet, wantInj)
				}
			}
		}
	}
	// The intra-word ablation row.
	sites := intraWordSites()
	for _, test := range []march.Test{march.IFA9(), march.MATSPlus()} {
		for bi, bgs := range bgSets {
			wantDet, wantInj := scalarCoverage(covCfg, sites, test, bgs)
			gotDet, gotInj, err := intraWordCoverage(test, bgs)
			if err != nil {
				t.Fatal(err)
			}
			if gotDet != wantDet || gotInj != wantInj {
				t.Errorf("intra-word/%s/bg%d: batch %d/%d, scalar %d/%d",
					test.Name, bi, gotDet, gotInj, wantDet, wantInj)
			}
		}
	}
}

// TestBatchChaos drills the sim.batch injection point: an error rule
// must surface from Coverage() as the injected typed error — no panic,
// no partial table — and a drained rule must leave the kernel healthy.
func TestBatchChaos(t *testing.T) {
	in, err := chaos.Parse([]byte(`{"rules":[{"point":"sim.batch","mode":"error","max":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	sram.SetBatchChaos(in)
	defer sram.SetBatchChaos(nil)
	if _, err := Coverage(); err == nil {
		t.Fatal("injected sim.batch error must fail the coverage table")
	} else {
		if cerr.CodeOf(err) != cerr.CodeInternal {
			t.Fatalf("injected error lost its typed code: %v", err)
		}
		if !strings.Contains(err.Error(), "sim.batch") {
			t.Fatalf("injected error does not name the point: %v", err)
		}
	}
	if in.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", in.Fired())
	}
	// The rule is drained (max:1): the next table must succeed.
	tb, err := Coverage()
	if err != nil {
		t.Fatalf("coverage after drained rule: %v", err)
	}
	if tb.ID != "COV" {
		t.Fatalf("unexpected table %q", tb.ID)
	}
}
