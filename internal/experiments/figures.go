package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/gds"
	"repro/internal/reliability"
	"repro/internal/render"
	"repro/internal/tech"
	"repro/internal/yield"
)

// fig45Rows/BPC/BPW are the common geometry of Figs. 4 and 5: a
// narrow RAM with 1024 rows, bpc = 4, bpw = 4.
const (
	fig45Rows = 1024
	fig45BPC  = 4
	fig45BPW  = 4
)

// fig45Params compiles the Fig. 4/5 RAM with the given spare count to
// obtain its real growth factor.
func fig45Params(spares int) compiler.Params {
	return compiler.Params{
		Words: fig45Rows * fig45BPC, BPW: fig45BPW, BPC: fig45BPC,
		Spares: spares, BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	}
}

// GrowthFactors compiles the Fig. 4 RAM at each spare count and
// returns the measured area growth factors the yield model needs.
func GrowthFactors() (map[int]float64, error) {
	out := map[int]float64{0: 1.0}
	for _, s := range []int{4, 8, 16} {
		d, err := compiler.Compile(fig45Params(s))
		if err != nil {
			return nil, fmt.Errorf("growth factor for %d spares: %w", s, err)
		}
		out[s] = d.Area.GrowthFactor
	}
	return out, nil
}

// Fig4 regenerates the yield-vs-defects plot: four series for 0, 4,
// 8 and 16 spares, with defects swept on the nonredundant-array axis
// exactly as the paper plots it. Growth factors come from local
// compiles; Fig4With accepts them from any source (e.g. the sweep
// service).
func Fig4(maxDefects int, step float64) (*Table, error) {
	gf, err := GrowthFactors()
	if err != nil {
		return nil, err
	}
	return Fig4With(gf, maxDefects, step)
}

// Fig4With builds the Fig. 4 table from pre-measured growth factors
// (keys 4, 8, 16; 0 is implicit). The table depends only on gf, so a
// service-fetched map yields byte-identical output to a local one.
func Fig4With(gf map[int]float64, maxDefects int, step float64) (*Table, error) {
	t := &Table{
		ID:     "FIG4",
		Title:  "Yield vs number of defects (1024 rows, bpc=4, bpw=4)",
		Header: []string{"defects", "Y(no spares)", "Y(4+BISR)", "Y(8+BISR)", "Y(16+BISR)"},
	}
	models := map[int]yield.Model{}
	for _, s := range []int{0, 4, 8, 16} {
		models[s] = yield.Model{
			Rows: fig45Rows, Cols: fig45BPC * fig45BPW, Spares: s,
			GrowthFactor: gf[s],
		}
	}
	if step <= 0 {
		step = 2
	}
	for n := 0.0; n <= float64(maxDefects); n += step {
		t.Add(n,
			models[0].YieldNoRepair(n),
			models[4].YieldBISR(n),
			models[8].YieldBISR(n),
			models[16].YieldBISR(n))
	}
	t.Note("growth factors from compiled layouts: 4sp %.4f, 8sp %.4f, 16sp %.4f",
		gf[4], gf[8], gf[16])
	t.Note("paper shape: BISR curves dominate the no-spare curve; more spares win at high defect counts")
	return t, nil
}

// Fig5LambdaBit is the per-bit hard-failure rate used for the Fig. 5
// reproduction: 1e-8 per hour (1e-5 per kilo-hour per cell), chosen
// so the 4-vs-8-spare crossover lands in the paper's ~8-year range.
const Fig5LambdaBit = 1e-8

// Fig5 regenerates the reliability-vs-age plot for 0, 4, 8 and 16
// spares plus the crossover ages.
func Fig5(maxYears int, stepYears float64) (*Table, error) {
	t := &Table{
		ID:     "FIG5",
		Title:  "Reliability vs device age (1024 rows, bpc=4, bpw=4)",
		Header: []string{"years", "R(no spares)", "R(4+BISR)", "R(8+BISR)", "R(16+BISR)"},
	}
	model := func(s int) reliability.Model {
		return reliability.Model{
			Rows: fig45Rows, BPC: fig45BPC, BPW: fig45BPW,
			Spares: s, LambdaBit: Fig5LambdaBit,
		}
	}
	if stepYears <= 0 {
		stepYears = 1
	}
	for y := 0.0; y <= float64(maxYears); y += stepYears {
		h := y * reliability.HoursPerYear
		t.Add(y, model(0).Reliability(h), model(4).Reliability(h),
			model(8).Reliability(h), model(16).Reliability(h))
	}
	if age, err := reliability.CrossoverAge(model(0), 4, 8, 100*reliability.HoursPerYear); err == nil {
		t.Note("4-vs-8-spare crossover at %.1f years (paper: ~8 years)", age/reliability.HoursPerYear)
	}
	if age, err := reliability.CrossoverAge(model(0), 8, 16, 300*reliability.HoursPerYear); err == nil {
		t.Note("8-vs-16-spare crossover at %.1f years", age/reliability.HoursPerYear)
	}
	for _, s := range []int{0, 4, 8, 16} {
		t.Note("MTTF(%d spares) = %.0f hours", s, model(s).MTTF())
	}
	return t, nil
}

// LayoutResult bundles a compiled layout experiment.
type LayoutResult struct {
	Table  *Table
	Design *compiler.Design
	SVG    string
	ASCII  string
	GDS    []byte
}

// layoutFig compiles one of the paper's example arrays and renders
// it.
func layoutFig(id, title string, p compiler.Params) (*LayoutResult, error) {
	d, err := compiler.Compile(p)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title,
		Header: []string{"metric", "value"}}
	b := d.Top.Bounds()
	t.Add("organisation", fmt.Sprintf("%d words x %d bits, bpc %d, %d spares",
		p.Words, p.BPW, p.BPC, p.Spares))
	t.Add("capacity_kbyte", float64(p.Bits())/8192)
	t.Add("outline_um", fmt.Sprintf("%.0f x %.0f", float64(b.W())/1000, float64(b.H())/1000))
	t.Add("total_area_mm2", d.Area.Total/1e6)
	t.Add("overhead_pct", d.Area.OverheadPct)
	t.Add("growth_factor", d.Area.GrowthFactor)
	t.Add("access_ns", d.Timing.AccessNs)
	t.Add("tlb_ns", d.Timing.TLBNs)
	t.Add("rectangularity", d.Plan.Rectangularity)
	t.Add("transistors(array row)", int64(p.BPW*p.BPC*6))
	var gdsBuf bytes.Buffer
	if err := gds.Write(&gdsBuf, d.Top, d.Top.Name); err != nil {
		return nil, err
	}
	return &LayoutResult{
		Table:  t,
		Design: d,
		SVG:    render.SVG(d.Top, render.Options{Depth: 0}),
		ASCII:  render.ASCII(d.Top, 78),
		GDS:    gdsBuf.Bytes(),
	}, nil
}

// Fig6 reproduces the paper's Fig. 6 layout: a 64-kbyte SRAM of 4 K
// words x 128 bits, 8 bits per column, 32 cells between straps, four
// spare rows, buffer size 2.
func Fig6() (*LayoutResult, error) {
	return layoutFig("FIG6", "SRAM array, 4 K words x 128 b (64 kbyte)", compiler.Params{
		Words: 4096, BPW: 128, BPC: 8, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	})
}

// Fig7 reproduces Fig. 7: 4 K words x 256 bits (128 kbyte), 16 bits
// per column, 32 cells between straps, four spare rows, buffer size 2.
func Fig7() (*LayoutResult, error) {
	return layoutFig("FIG7", "SRAM array, 4 K words x 256 b (128 kbyte)", compiler.Params{
		Words: 4096, BPW: 256, BPC: 16, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	})
}
