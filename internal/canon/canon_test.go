package canon

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cerr"
	"repro/internal/compiler"
	"repro/internal/tech"
)

func smallRequest() Request {
	return Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
}

func TestDefaultsApplied(t *testing.T) {
	p, err := smallRequest().Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Process.Name != DefaultProcess {
		t.Fatalf("process %q, want default %q", p.Process.Name, DefaultProcess)
	}
	if p.BufSize != DefaultBufSize {
		t.Fatalf("bufsize %d, want %d", p.BufSize, DefaultBufSize)
	}
	if p.Test.Name != "IFA-9" && !strings.Contains(strings.ToLower(p.Test.Name), "ifa") {
		t.Fatalf("unexpected default test %q", p.Test.Name)
	}
}

func TestKeyStableAcrossRuns(t *testing.T) {
	r := smallRequest()
	k1, err := r.Key()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k2, err := r.Key()
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("key changed between runs: %s vs %s", k1, k2)
		}
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not sha256 hex", k1)
	}
}

func TestExplicitDefaultsAliasOmitted(t *testing.T) {
	implicit := smallRequest()
	explicit := smallRequest()
	explicit.Process = DefaultProcess
	explicit.Corner = DefaultCorner
	explicit.Test = DefaultTest
	explicit.BufSize = DefaultBufSize
	k1, err := implicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("spelled-out defaults must hash identically to omitted defaults")
	}
}

func TestDistinctInputsDistinctKeys(t *testing.T) {
	seen := map[string]string{}
	variants := []Request{
		smallRequest(),
		{Words: 512, BPW: 8, BPC: 4, Spares: 4},
		{Words: 256, BPW: 16, BPC: 4, Spares: 4},
		{Words: 256, BPW: 8, BPC: 4, Spares: 8},
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, Corner: "slow"},
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, Test: "marchx"},
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, Process: "cda05u3m1p"},
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, RefineIterations: 100},
	}
	for i, r := range variants {
		k, err := r.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %s", i, prev)
		}
		seen[k] = r.Test + r.Process + r.Corner
	}
}

func TestCustomMarchNotationAliases(t *testing.T) {
	a := smallRequest()
	a.March = "b(w0); u(r0,w1); d(r1,w0)"
	b := smallRequest()
	b.March = "b(w0);u(r0,w1);d(r1,w0)"
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("whitespace variants of the same march test must alias")
	}
}

func TestInlineDeckKeyedByContent(t *testing.T) {
	deck := `name userdeck
feature_nm 700
metals 3
vdd 5.0
kp_n 90e-6
kp_p 30e-6
`
	a := smallRequest()
	a.Deck = deck
	b := smallRequest()
	b.Deck = deck + "# a comment changes nothing semantic\n"
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("comment-only deck difference must not change the key")
	}
	c := smallRequest()
	c.Deck = strings.Replace(deck, "vdd 5.0", "vdd 3.3", 1)
	kc, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("semantically different decks must not alias")
	}
}

func TestInvalidRequestsTyped(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Request)
		code cerr.Code
	}{
		{"bad process", func(r *Request) { r.Process = "nope" }, cerr.CodeInvalidParams},
		{"bad corner", func(r *Request) { r.Corner = "scorching" }, cerr.CodeInvalidParams},
		{"bad test", func(r *Request) { r.Test = "march-omega" }, cerr.CodeInvalidParams},
		{"bad march", func(r *Request) { r.March = "q(z9)" }, cerr.CodeMarchParse},
		{"bad geometry", func(r *Request) { r.Words = 255 }, cerr.CodeInvalidParams},
		{"half planes", func(r *Request) { r.ANDPlane = "x" }, cerr.CodePlaneParse},
		{"bad deck", func(r *Request) { r.Deck = "feature_nm banana" }, cerr.CodeDeckParse},
	}
	for _, tc := range cases {
		r := smallRequest()
		tc.mut(&r)
		_, err := r.Params()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if cerr.CodeOf(err) != tc.code {
			t.Fatalf("%s: code %v, want %v (err: %v)", tc.name, cerr.CodeOf(err), tc.code, err)
		}
	}
}

func TestParseRequestStrict(t *testing.T) {
	if _, err := ParseRequest([]byte(`{"words":256,"bpw":8,"bpc":4,"spares":4}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRequest([]byte(`{"wordz":256}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	} else if cerr.CodeOf(err) != cerr.CodeInvalidParams {
		t.Fatalf("code %v", cerr.CodeOf(err))
	}
	if _, err := ParseRequest([]byte(`{"words":1} {"words":2}`)); err == nil {
		t.Fatal("trailing data must be rejected")
	}
}

func TestKeyOfParamsMatchesRequestKey(t *testing.T) {
	r := smallRequest()
	p, err := r.Params()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := r.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyOfParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("Request.Key and KeyOfParams disagree")
	}
}

func TestKeyOfParamsRejectsInvalid(t *testing.T) {
	_, err := KeyOfParams(compiler.Params{})
	if err == nil {
		t.Fatal("unvalidated params must not be keyable")
	}
	if !errors.Is(err, cerr.ErrInvalidParams) {
		t.Fatalf("want ErrInvalidParams, got %v", err)
	}
}

func TestTestNamesAllResolve(t *testing.T) {
	for _, n := range TestNames() {
		if _, err := TestByName(n); err != nil {
			t.Fatalf("TestNames lists %q but TestByName rejects it", n)
		}
	}
}

func TestNamedDeckAliasesIdenticalInline(t *testing.T) {
	// A named built-in deck and its own value round-tripped through the
	// key document must alias: the key addresses content, not spelling.
	byName := smallRequest()
	p1, err := byName.Params()
	if err != nil {
		t.Fatal(err)
	}
	p2 := p1
	proc, err := tech.ByName(DefaultProcess)
	if err != nil {
		t.Fatal(err)
	}
	cp := *proc
	p2.Process = &cp // distinct pointer, same content
	k1, err := KeyOfParams(p1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyOfParams(p2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical deck content behind different pointers must alias")
	}
}
