package canon

import (
	"strings"
	"testing"

	"repro/internal/cerr"
)

// goldenKey pins the content address of the canonical small request
// ({words:256,bpw:8,bpc:4,spares:4}, all defaults). If this test
// fails, the canonicalization changed and every persisted store entry
// is invalidated — bump KeyVersion deliberately, never by accident.
const goldenKey = "ae0f0d969af6e1b4a5c1bbc178180d39ccdcbffa219e2a999ff9c90329505693"

func TestGoldenKeyStable(t *testing.T) {
	r := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
	k, err := r.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k != goldenKey {
		t.Fatalf("content key drifted:\n got  %s\n want %s\n(bump canon.KeyVersion if this is intentional)", k, goldenKey)
	}
}

func TestVersionFieldDoesNotChangeKey(t *testing.T) {
	implicit := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
	explicit := implicit
	explicit.Version = WireVersion

	ki, err := implicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	ke, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Fatalf("explicit version %d changed the key: %s vs %s", WireVersion, ki, ke)
	}
	if ki != goldenKey {
		t.Fatalf("key %s != golden %s", ki, goldenKey)
	}
}

func TestVersionWireAcceptance(t *testing.T) {
	cases := []struct {
		name string
		body string
		code cerr.Code // CodeUnknown means accept
	}{
		{"absent", `{"words":256,"bpw":8,"bpc":4,"spares":4}`, cerr.CodeUnknown},
		{"explicit-1", `{"version":1,"words":256,"bpw":8,"bpc":4,"spares":4}`, cerr.CodeUnknown},
		{"unknown-2", `{"version":2,"words":256,"bpw":8,"bpc":4,"spares":4}`, cerr.CodeBadRequest},
		{"negative", `{"version":-1,"words":256,"bpw":8,"bpc":4,"spares":4}`, cerr.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ParseRequest([]byte(tc.body))
			if tc.code == cerr.CodeUnknown {
				if err != nil {
					t.Fatalf("accept case rejected: %v", err)
				}
				if k, err := r.Key(); err != nil || k != goldenKey {
					t.Fatalf("key %q err %v, want golden", k, err)
				}
				return
			}
			if err == nil {
				t.Fatal("unknown version accepted")
			}
			if cerr.CodeOf(err) != tc.code {
				t.Fatalf("code %v, want %v (%v)", cerr.CodeOf(err), tc.code, err)
			}
			if !strings.Contains(err.Error(), "version") {
				t.Fatalf("error does not mention version: %v", err)
			}
		})
	}
}

func TestNormalizedFillsVersion(t *testing.T) {
	n := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}.Normalized()
	if n.Version != WireVersion {
		t.Fatalf("Normalized version = %d, want %d", n.Version, WireVersion)
	}
}

// Params() must also gate the version for requests constructed in Go
// (e.g. a sweep base built programmatically).
func TestParamsRejectsUnknownVersion(t *testing.T) {
	r := Request{Version: 7, Words: 256, BPW: 8, BPC: 4, Spares: 4}
	if _, err := r.Params(); cerr.CodeOf(err) != cerr.CodeBadRequest {
		t.Fatalf("Params accepted version 7 (err=%v)", err)
	}
}
