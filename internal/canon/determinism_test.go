package canon

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/tech"
)

// TestParallelismExcludedFromKey pins the cache-aliasing contract:
// requests and params that differ only in the concurrency knob hash
// to the same content address, because the compiler guarantees the
// output bytes do not depend on it.
func TestParallelismExcludedFromKey(t *testing.T) {
	base := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 16
	k16, err := par.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k16 {
		t.Fatalf("parallelism leaked into the content key: %s vs %s", k0, k16)
	}

	p, err := base.Params()
	if err != nil {
		t.Fatal(err)
	}
	pp := p
	pp.Parallelism = 64
	kp0, err := KeyOfParams(p)
	if err != nil {
		t.Fatal(err)
	}
	kp64, err := KeyOfParams(pp)
	if err != nil {
		t.Fatal(err)
	}
	if kp0 != kp64 {
		t.Fatalf("KeyOfParams depends on parallelism: %s vs %s", kp0, kp64)
	}
}

// TestSerialParallelCompileSameKeyAndBytes is the end-to-end
// determinism check the serving layer relies on: resolve one request
// twice — serial and with the knob wide open — compile both, and
// require identical content keys AND identical datasheet bytes. Under
// `go test -race` (make race) this also proves the concurrent stage
// DAG is race-free.
func TestSerialParallelCompileSameKeyAndBytes(t *testing.T) {
	req := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4,
		RefineIterations: 1500}

	serialReq := req
	serialReq.Parallelism = 1
	parReq := req
	parReq.Parallelism = 16

	ks, err := serialReq.Key()
	if err != nil {
		t.Fatal(err)
	}
	kp, err := parReq.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ks != kp {
		t.Fatalf("content keys diverged: %s vs %s", ks, kp)
	}

	ps, err := serialReq.Params()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := parReq.Params()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Parallelism != 1 || pp.Parallelism != 16 {
		t.Fatalf("parallelism not threaded through Params: %d / %d",
			ps.Parallelism, pp.Parallelism)
	}
	ds, err := compiler.Compile(ps)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := compiler.Compile(pp)
	if err != nil {
		t.Fatal(err)
	}
	js, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := dp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if js != jp {
		t.Fatalf("serial and parallel datasheets diverged under key %s", ks)
	}
}

// TestCornerDecksShareLeafLibrary guards the memo keying: the daemon
// re-derives corner decks per request, so two resolutions of the same
// corner must produce content-identical decks (the leafcell memo keys
// by deck content, not pointer).
func TestCornerDecksShareLeafLibrary(t *testing.T) {
	a, err := tech.CDA07.Corner("slow")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tech.CDA07.Corner("slow")
	if err != nil {
		t.Fatal(err)
	}
	ka, err := KeyOfParams(compiler.Params{Words: 256, BPW: 8, BPC: 4,
		Spares: 4, BufSize: 2, Process: a})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := KeyOfParams(compiler.Params{Words: 256, BPW: 8, BPC: 4,
		Spares: 4, BufSize: 2, Process: b})
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("same corner resolved twice must alias to one key")
	}
}
