// Package canon defines the wire form of a BISRAMGEN compile request
// and its content address: a deterministic canonicalization of the
// fully-validated inputs (circuit parameters + resolved technology
// deck + march/test specification) hashed with SHA-256.
//
// The same Request/Params loader serves three front ends — the
// bisramgend HTTP daemon, the bisramgen CLI, and the bisrsim fault
// simulator — so validation, defaulting and keying behave identically
// no matter how a compile is invoked. Two requests that resolve to the
// same effective inputs (e.g. a built-in deck referenced by name vs.
// the identical deck pasted inline, or a march test written with
// different whitespace) produce the same key, which is what makes the
// serving layer's content-addressed cache safe: a key collision is a
// semantic equivalence, never an accident of formatting.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"strings"

	"repro/internal/bist"
	"repro/internal/cerr"
	"repro/internal/cjson"
	"repro/internal/compiler"
	"repro/internal/march"
	"repro/internal/mcyield"
	"repro/internal/tech"
)

// KeyVersion is the canonical-form schema version. It is folded into
// every key so a change to the canonicalization (new field, different
// deck serialization) invalidates old cache entries instead of
// aliasing them.
const KeyVersion = 1

// WireVersion is the current compile-request wire-format version. A
// request may omit the field (it defaults to WireVersion); any other
// value is rejected with ERR_BAD_REQUEST at parse time. The wire
// version is deliberately NOT part of the content key: a version-1
// request with and without the explicit field resolves to the same
// key (the key schema has its own independent KeyVersion).
const WireVersion = 1

// Request is the JSON wire form of one compile request — the inputs
// of the paper's Fig. 1 plus the test-algorithm selection, exactly
// mirroring the bisramgen CLI flags. The zero value of each optional
// field selects the CLI's default.
type Request struct {
	// Version is the wire-format version; 0 (absent) defaults to
	// WireVersion, anything else must equal WireVersion.
	Version int `json:"version,omitempty"`

	// Geometry (required; validated by compiler.Params.Validate).
	Words  int `json:"words"`
	BPW    int `json:"bpw"`
	BPC    int `json:"bpc"`
	Spares int `json:"spares"`

	// Sizing knobs. BufSize defaults to 2 (the CLI default) when 0.
	BufSize    int `json:"bufsize,omitempty"`
	StrapCells int `json:"strap_cells,omitempty"`

	// RefineIterations enables the simulated-annealing floorplan
	// refiner for that many moves.
	RefineIterations int `json:"refine_iterations,omitempty"`

	// Process selects a built-in deck by name (default cda07u3m1p);
	// Deck, when non-empty, is an inline process deck in the
	// internal/tech.Parse key/value format and takes precedence.
	Process string `json:"process,omitempty"`
	Deck    string `json:"deck,omitempty"`
	// Corner is typ (default), slow or fast.
	Corner string `json:"corner,omitempty"`

	// Test names a built-in march algorithm (default ifa9); March,
	// when non-empty, is a custom test in the standard notation, e.g.
	// "b(w0); u(r0,w1); d(r1,w0)", and takes precedence.
	Test  string `json:"test,omitempty"`
	March string `json:"march,omitempty"`

	// ANDPlane/ORPlane carry TRPLA control-plane file contents (the
	// runtime control-code loading path); both must be set together.
	// StateBits is the state-register width for loaded planes
	// (default 5).
	ANDPlane  string `json:"and_plane,omitempty"`
	ORPlane   string `json:"or_plane,omitempty"`
	StateBits int    `json:"state_bits,omitempty"`

	// Parallelism bounds the goroutine fan-out of the compile's
	// independent stages (0 lets the server pick its configured
	// default). It is an execution knob, not a design input: the
	// compiler guarantees byte-identical output for every value, so
	// Parallelism is deliberately EXCLUDED from the canonical key form
	// — a parallel compile must hit the cache entry a serial compile
	// wrote, and vice versa (see keyForm and the golden-key test).
	Parallelism int `json:"parallelism,omitempty"`

	// Monte-Carlo yield analysis knobs (internal/mcyield). MCSamples
	// cell samples are classified at relative parameter spread MCSigma
	// with deterministic seed MCSeed; both MCSamples and MCSigma must
	// be set together (zero means no statistical yield analysis).
	// Like Parallelism these are analysis-only: they select extra
	// post-compile analysis and are deliberately EXCLUDED from the
	// canonical key form, so every MC variant of a design shares the
	// one compiled artifact exactly as defect-rate sweep points do.
	MCSamples int     `json:"mc_samples,omitempty"`
	MCSigma   float64 `json:"mc_sigma,omitempty"`
	MCSeed    int64   `json:"mc_seed,omitempty"`
}

// MCEnabled reports whether the request asks for Monte-Carlo yield
// analysis.
func (r Request) MCEnabled() bool { return r.MCSamples > 0 }

// ValidateMC checks the Monte-Carlo analysis knobs against the
// engine's envelope. The zero value (no MC analysis) is valid.
func (r Request) ValidateMC() error {
	switch {
	case r.MCSamples < 0 || r.MCSamples > mcyield.MaxSamples:
		return cerr.New(cerr.CodeInvalidParams,
			"canon: mc_samples %d out of range [0, %d]", r.MCSamples, mcyield.MaxSamples)
	case math.IsNaN(r.MCSigma) || r.MCSigma < 0 || r.MCSigma > mcyield.MaxSigma:
		return cerr.New(cerr.CodeInvalidParams,
			"canon: mc_sigma %g out of range [0, %g]", r.MCSigma, mcyield.MaxSigma)
	case (r.MCSamples > 0) != (r.MCSigma > 0):
		return cerr.New(cerr.CodeInvalidParams,
			"canon: mc_samples and mc_sigma must be set together (got %d, %g)",
			r.MCSamples, r.MCSigma)
	}
	return nil
}

// Defaults, shared with the CLI flag definitions.
const (
	DefaultProcess   = "cda07u3m1p"
	DefaultCorner    = "typ"
	DefaultTest      = "ifa9"
	DefaultBufSize   = 2
	DefaultStateBits = 5
)

// Normalized returns the request with every optional selector filled
// with its documented default, so canonicalization never depends on
// whether a default was spelled out or omitted.
func (r Request) Normalized() Request {
	if r.Version == 0 {
		r.Version = WireVersion
	}
	if r.Deck == "" && r.Process == "" {
		r.Process = DefaultProcess
	}
	if r.Corner == "" {
		r.Corner = DefaultCorner
	}
	if r.March == "" && r.Test == "" {
		r.Test = DefaultTest
	}
	if r.BufSize == 0 {
		r.BufSize = DefaultBufSize
	}
	if (r.ANDPlane != "" || r.ORPlane != "") && r.StateBits == 0 {
		r.StateBits = DefaultStateBits
	}
	return r
}

// Params resolves the request into fully-validated compiler
// parameters: deck lookup or inline parse, corner derivation, march
// resolution, optional TRPLA plane loading, and the compiler's own
// envelope validation. Every failure carries a cerr code.
// CheckVersion validates the wire-format version: absent (0) and
// WireVersion are accepted, anything else is ERR_BAD_REQUEST.
func (r Request) CheckVersion() error {
	if r.Version != 0 && r.Version != WireVersion {
		return cerr.New(cerr.CodeBadRequest,
			"canon: unsupported request version %d (this server speaks version %d)",
			r.Version, WireVersion)
	}
	return nil
}

func (r Request) Params() (compiler.Params, error) {
	var zero compiler.Params
	if err := r.CheckVersion(); err != nil {
		return zero, err
	}
	if err := r.ValidateMC(); err != nil {
		return zero, err
	}
	r = r.Normalized()

	var proc *tech.Process
	var err error
	if r.Deck != "" {
		proc, err = tech.Parse(strings.NewReader(r.Deck))
		if err != nil {
			return zero, cerr.Wrap(cerr.CodeDeckParse, err, "canon: inline deck rejected")
		}
	} else {
		proc, err = tech.ByName(r.Process)
		if err != nil {
			return zero, err
		}
	}
	proc, err = proc.Corner(r.Corner)
	if err != nil {
		return zero, err
	}

	var alg march.Test
	if r.March != "" {
		alg, err = march.Parse("custom", r.March)
		if err != nil {
			return zero, err
		}
	} else {
		alg, err = TestByName(r.Test)
		if err != nil {
			return zero, err
		}
	}

	p := compiler.Params{
		Words: r.Words, BPW: r.BPW, BPC: r.BPC, Spares: r.Spares,
		BufSize: r.BufSize, StrapCells: r.StrapCells,
		RefineIterations: r.RefineIterations,
		Parallelism:      r.Parallelism,
		Process:          proc, Test: alg,
	}

	if r.ANDPlane != "" || r.ORPlane != "" {
		if r.ANDPlane == "" || r.ORPlane == "" {
			return zero, cerr.New(cerr.CodePlaneParse,
				"canon: both and_plane and or_plane are required to load TRPLA control code")
		}
		prog, perr := bist.ReadPlanes("custom", r.StateBits,
			strings.NewReader(r.ANDPlane), strings.NewReader(r.ORPlane))
		if perr != nil {
			return zero, perr
		}
		p.Program = prog
	}

	if err := p.Validate(); err != nil {
		return zero, err
	}
	return p, nil
}

// keyForm is the canonical document that gets hashed: the resolved,
// validated inputs, never the raw request. Field names are part of the
// key schema; bump KeyVersion when changing them.
//
// Parallelism is deliberately NOT a field here: it is an execution
// knob with no influence on the output bytes (the compiler's
// byte-determinism contract), so requests differing only in
// parallelism must alias to one cache entry.
type keyForm struct {
	V          int           `json:"v"`
	Words      int           `json:"words"`
	BPW        int           `json:"bpw"`
	BPC        int           `json:"bpc"`
	Spares     int           `json:"spares"`
	BufSize    int           `json:"bufsize"`
	StrapCells int           `json:"strap_cells"`
	Refine     int           `json:"refine_iterations"`
	Process    *tech.Process `json:"process"`
	// Test is the resolved march test in canonical notation
	// (march.Test.String()), so spelling variants alias.
	Test string `json:"test"`
	// Planes, when a raw TRPLA program is supplied, is the program's
	// canonical re-serialization (WritePlanes output) plus the state
	// width — equivalent plane files alias to one key.
	Planes *planeForm `json:"planes,omitempty"`
}

type planeForm struct {
	StateBits int    `json:"state_bits"`
	AND       string `json:"and"`
	OR        string `json:"or"`
}

// CanonicalParams renders fully-validated compiler parameters as the
// canonical key document (compact canonical JSON, sorted keys, fixed
// float formatting — see internal/cjson).
func CanonicalParams(p compiler.Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	test := p.Test
	if test.Name == "" {
		test = march.IFA9()
	}
	kf := keyForm{
		V:     KeyVersion,
		Words: p.Words, BPW: p.BPW, BPC: p.BPC, Spares: p.Spares,
		BufSize: p.BufSize, StrapCells: p.StrapCells,
		Refine:  p.RefineIterations,
		Process: p.Process,
		Test:    test.String(),
	}
	if p.Program != nil {
		var and, or bytes.Buffer
		if err := p.Program.WritePlanes(&and, &or); err != nil {
			return nil, cerr.Wrap(cerr.CodePlaneParse, err, "canon: program re-serialization failed")
		}
		kf.Planes = &planeForm{StateBits: p.Program.StateBits, AND: and.String(), OR: or.String()}
	}
	return cjson.Marshal(kf)
}

// KeyOfParams returns the SHA-256 content address (hex) of validated
// compiler parameters.
func KeyOfParams(p compiler.Params) (string, error) {
	doc, err := CanonicalParams(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// Canonical resolves the request and returns its canonical key
// document.
func (r Request) Canonical() ([]byte, error) {
	p, err := r.Params()
	if err != nil {
		return nil, err
	}
	return CanonicalParams(p)
}

// Key resolves the request and returns its SHA-256 content address.
func (r Request) Key() (string, error) {
	p, err := r.Params()
	if err != nil {
		return "", err
	}
	return KeyOfParams(p)
}

// ParseRequest decodes the JSON wire form strictly: unknown fields
// and trailing garbage are rejected with ERR_INVALID_PARAMS, so a
// typo'd field name fails loudly instead of silently selecting a
// default.
func ParseRequest(data []byte) (Request, error) {
	var r Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Request{}, cerr.Wrap(cerr.CodeInvalidParams, err, "canon: bad request JSON")
	}
	if dec.More() {
		return Request{}, cerr.New(cerr.CodeInvalidParams, "canon: trailing data after request JSON")
	}
	if err := r.CheckVersion(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// TestByName resolves a built-in march algorithm name. It is the one
// name table shared by the CLIs and the daemon.
func TestByName(name string) (march.Test, error) {
	switch name {
	case "ifa9":
		return march.IFA9(), nil
	case "ifa13":
		return march.IFA13(), nil
	case "mats+":
		return march.MATSPlus(), nil
	case "marchx":
		return march.MarchX(), nil
	case "marchy":
		return march.MarchY(), nil
	case "marchb":
		return march.MarchB(), nil
	case "marchc-":
		return march.MarchCMinus(), nil
	}
	return march.Test{}, cerr.New(cerr.CodeInvalidParams, "unknown test %q", name)
}

// TestNames lists the built-in march algorithm names accepted by
// TestByName, for CLI help strings and API docs.
func TestNames() []string {
	return []string{"ifa9", "ifa13", "mats+", "marchx", "marchy", "marchb", "marchc-"}
}
