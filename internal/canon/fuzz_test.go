package canon

import (
	"testing"

	"repro/internal/cerr"
)

// FuzzParseRequest drives the strict request decoder plus the full
// resolve-and-key path with arbitrary bytes. The invariants are the
// service's front door: no panic, every rejection typed, and a request
// that resolves at all must produce a stable 64-hex content address.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"words":256,"bpw":8,"bpc":4,"spares":4}`))
	f.Add([]byte(`{"words":1024,"bpw":8,"bpc":4,"spares":4,"test":"marchc-","corner":"slow"}`))
	f.Add([]byte(`{"words":512,"bpw":8,"bpc":4,"spares":4,"march":"b(w0); u(r0,w1); d(r1,w0)"}`))
	f.Add([]byte(`{"words":0}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"words":256,"bpw":8,"bpc":4,"spares":4,"deck":"name x\nfeature_nm 500\n"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		key, err := req.Key()
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped resolve error: %v", err)
			}
			return
		}
		if len(key) != 64 {
			t.Fatalf("content address %q is not 64 hex chars", key)
		}
		// Keying must be deterministic across calls.
		again, err := req.Key()
		if err != nil || again != key {
			t.Fatalf("unstable key: %q vs %q (err %v)", key, again, err)
		}
	})
}
