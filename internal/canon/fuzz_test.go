package canon

import (
	"testing"

	"repro/internal/cerr"
	"repro/internal/mcyield"
)

// FuzzParseRequest drives the strict request decoder plus the full
// resolve-and-key path with arbitrary bytes. The invariants are the
// service's front door: no panic, every rejection typed, and a request
// that resolves at all must produce a stable 64-hex content address.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"words":256,"bpw":8,"bpc":4,"spares":4}`))
	f.Add([]byte(`{"words":1024,"bpw":8,"bpc":4,"spares":4,"test":"marchc-","corner":"slow"}`))
	f.Add([]byte(`{"words":512,"bpw":8,"bpc":4,"spares":4,"march":"b(w0); u(r0,w1); d(r1,w0)"}`))
	f.Add([]byte(`{"words":0}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"words":256,"bpw":8,"bpc":4,"spares":4,"deck":"name x\nfeature_nm 500\n"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		key, err := req.Key()
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped resolve error: %v", err)
			}
			return
		}
		if len(key) != 64 {
			t.Fatalf("content address %q is not 64 hex chars", key)
		}
		// Keying must be deterministic across calls.
		again, err := req.Key()
		if err != nil || again != key {
			t.Fatalf("unstable key: %q vs %q (err %v)", key, again, err)
		}
	})
}

// FuzzMCParams drives the Monte-Carlo analysis knobs: arbitrary
// (samples, sigma, seed) triples must either be rejected with a typed
// error or be accepted WITHOUT changing the content address — the MC
// fields are analysis-only and every variant must share the compiled
// artifact, exactly like parallelism.
func FuzzMCParams(f *testing.F) {
	f.Add(0, 0.0, int64(0))
	f.Add(1000, 0.1, int64(42))
	f.Add(1, 0.5, int64(-1))
	f.Add(mcyield.MaxSamples, 0.0001, int64(1))
	f.Add(mcyield.MaxSamples+1, 0.1, int64(0))
	f.Add(-5, 0.1, int64(7))
	f.Add(100, -0.2, int64(7))
	f.Add(100, 1.5, int64(7))
	f.Add(100, 0.0, int64(7))
	f.Fuzz(func(t *testing.T, samples int, sigma float64, seed int64) {
		base := Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
		baseKey, err := base.Key()
		if err != nil {
			t.Fatalf("base request must key: %v", err)
		}
		req := base
		req.MCSamples, req.MCSigma, req.MCSeed = samples, sigma, seed
		key, err := req.Key()
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped MC rejection: %v", err)
			}
			if req.ValidateMC() == nil {
				t.Fatalf("Key rejected MC knobs ValidateMC accepts: %v", err)
			}
			return
		}
		if err := req.ValidateMC(); err != nil {
			t.Fatalf("Key accepted MC knobs ValidateMC rejects: %v", err)
		}
		if key != baseKey {
			t.Fatalf("MC knobs leaked into the content key: %q vs %q", key, baseKey)
		}
	})
}
