// Embedded-cache sizing study: the paper motivates BISRAMGEN with the
// embedded L1/L2 caches of 1990s microprocessors (64 Kb - 4 Mb). This
// example compiles a 64-kbyte L1-style data array (4 K words x 128
// bits, the Fig. 6 organisation) on all three supported processes and
// across spare counts, and prints the area, overhead, timing and
// yield-model inputs a cache designer would compare.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/tech"
	"repro/internal/yield"
)

func main() {
	fmt.Println("64-kbyte embedded cache (4K words x 128 b, bpc 8) across processes:")
	fmt.Printf("%-14s %8s %10s %9s %9s %8s %9s\n",
		"process", "spares", "area_mm2", "ovhd_%", "access", "tlb_ns", "maskable")
	for _, proc := range []*tech.Process{tech.CDA05, tech.MOS06, tech.CDA07} {
		for _, spares := range []int{4, 8, 16} {
			d, err := compiler.Compile(compiler.Params{
				Words: 4096, BPW: 128, BPC: 8, Spares: spares,
				BufSize: 2, StrapCells: 32, Process: proc,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %8d %10.3f %9.2f %8.2fns %8.3f %9v\n",
				proc.Name, spares, d.Area.Total/1e6, d.Area.OverheadPct,
				d.Timing.AccessNs, d.Timing.TLBNs, d.Timing.TLBMaskable)
		}
	}

	// Yield planning: how many spares does this cache need at a given
	// process maturity? Defects on the x axis are expected defects in
	// the nonredundant array.
	fmt.Println("\nyield vs spares for the 0.7 µm build (Stapper alpha=2):")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "defects", "no-BISR", "4 spares", "8 spares", "16 spares")
	models := map[int]yield.Model{}
	for _, s := range []int{0, 4, 8, 16} {
		d, err := compiler.Compile(compiler.Params{
			Words: 4096, BPW: 128, BPC: 8, Spares: s,
			BufSize: 2, StrapCells: 32, Process: tech.CDA07,
		})
		if err != nil {
			log.Fatal(err)
		}
		models[s] = yield.Model{
			Rows: 512, Cols: 1024, Spares: s,
			GrowthFactor: d.Area.GrowthFactor, Alpha: 2,
		}
	}
	for _, n := range []float64{0.5, 1, 2, 4, 8} {
		fmt.Printf("%8.1f %12.4f %12.4f %12.4f %12.4f\n", n,
			models[0].YieldNoRepair(n), models[4].YieldBISR(n),
			models[8].YieldBISR(n), models[16].YieldBISR(n))
	}
	fmt.Println("\nreading: pick the spare count where yield saturates; beyond that the")
	fmt.Println("TLB delay and the fault-free-spares requirement cost more than they buy.")
}
