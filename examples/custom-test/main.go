// Custom test algorithm workflow: the paper stresses that swapping
// the TRPLA's test algorithm is "a simple and straightforward matter"
// of editing two plane files. This example walks the full loop in
// code: write a march test in notation, assemble it to the PLA
// control program, serialise and re-load the plane files, compile a
// RAM around it, drive the self-repair flow with it, and finally run
// it transparently against live data.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/compiler"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

func main() {
	// 1. A custom algorithm in march notation: March C- plus a
	//    retention element (ASCII form; the ⇑⇓⇕ arrows also parse).
	notation := "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); Del; b(r0)"
	test, err := march.Parse("March C- + retention", notation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algorithm: %s\n  %v\n", test.Name, test)

	// 2. Assemble to the TRPLA microprogram and round-trip it through
	//    the AND/OR plane files, exactly as a user editing the files
	//    would feed them back in.
	prog, err := bist.Assemble(test)
	if err != nil {
		log.Fatal(err)
	}
	var andPlane, orPlane bytes.Buffer
	if err := prog.WritePlanes(&andPlane, &orPlane); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("microprogram: %d states in %d flip-flops, %d product terms\n",
		prog.NumStates, prog.StateBits, len(prog.Terms))
	fmt.Printf("plane files: %d + %d bytes\n", andPlane.Len(), orPlane.Len())
	loaded, err := bist.ReadPlanes(test.Name, prog.StateBits, &andPlane, &orPlane)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile a RAM whose controller runs the loaded program.
	design, err := compiler.Compile(compiler.Params{
		Words: 512, BPW: 8, BPC: 4, Spares: 4,
		BufSize: 2, StrapCells: 16, Process: tech.CDA07,
		Program: loaded,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(design.Datasheet())

	// 4. Self-repair with the custom algorithm: note the retention
	//    element catches a data-retention fault that March C- alone
	//    would miss.
	ram, err := design.NewInstance()
	if err != nil {
		log.Fatal(err)
	}
	if err := ram.Arr.Inject(sram.CellAddr{Row: 11, Col: 6},
		sram.Fault{Kind: sram.DRF0}); err != nil {
		log.Fatal(err)
	}
	ctl := bisr.NewController(ram)
	ctl.Test = test
	out, err := ctl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-repair with %q: repaired=%v, spares used=%d\n",
		test.Name, out.Repaired, out.SparesUsed)

	// 5. Periodic field test, transparently: contents survive.
	for i := 0; i < ram.Words(); i++ {
		ram.Write(i, uint64(i)&0xFF)
	}
	tres := march.RunTransparent(ram, test, 8)
	fmt.Printf("transparent field re-test: pass=%v, contents restored=%v (%d ops)\n",
		tres.Pass(), tres.Restored, tres.Operations)
}
