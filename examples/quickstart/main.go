// Quickstart: compile a small built-in self-repairable SRAM, break
// it, let it heal itself, and verify it — the complete BISRAMGEN flow
// in one page of code.
package main

import (
	"fmt"
	"log"

	"repro/internal/bisr"
	"repro/internal/compiler"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

func main() {
	// 1. Compile: 1024 words x 8 bits, 4-way column multiplexing,
	//    4 spare rows, on the 0.7 µm process.
	design, err := compiler.Compile(compiler.Params{
		Words: 1024, BPW: 8, BPC: 4, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Datasheet())
	fmt.Println()

	// 2. Instantiate the behavioural simulation model and damage it:
	//    a stuck-at-1 cell in row 17 and a transition fault in row 3.
	ram, err := design.NewInstance()
	if err != nil {
		log.Fatal(err)
	}
	mustInject(ram.Arr, sram.CellAddr{Row: 17, Col: 5}, sram.Fault{Kind: sram.SA1})
	mustInject(ram.Arr, sram.CellAddr{Row: 3, Col: 20}, sram.Fault{Kind: sram.TFU})

	// 3. Run the microprogrammed two-pass self-test-and-repair: pass 1
	//    finds the faulty rows and fills the TLB, pass 2 re-tests
	//    through the spare mapping.
	outcome, err := bisr.NewController(ram).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-repair: repaired=%v, %d spares used, %d captures, %d iteration(s)\n",
		outcome.Repaired, outcome.SparesUsed, outcome.Captures, outcome.Iterations)
	for _, e := range ram.TLB.Entries() {
		fmt.Printf("  TLB: faulty row %d -> spare row %d (valid=%v)\n", e.Row, e.Spare, e.Valid)
	}

	// 4. Verify with an independent IFA-9 march and then use it as a
	//    plain memory.
	res := march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(8), 8)
	fmt.Printf("verification march: pass=%v (%d operations)\n", res.Pass(), res.Operations)

	ram.Write(70, 0xA5) // address 70 lives in repaired row 17
	fmt.Printf("write/read through the repaired row: %#x\n", ram.Read(70))
}

func mustInject(a *sram.Array, c sram.CellAddr, f sram.Fault) {
	if err := a.Inject(c, f); err != nil {
		log.Fatal(err)
	}
}
