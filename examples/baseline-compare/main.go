// Baseline comparison: BISRAMGEN's parallel TLB row repair against
// the two prior schemes the paper critiques in Section III — the
// Sawada'89 single fail-address register and the Chen-Sunada'93
// hierarchical two-captures-per-subblock organisation — on identical
// random fault patterns, plus the access-path comparison-latency
// difference.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	var (
		trials = flag.Int("trials", 60, "trials per fault count")
		seed   = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	tb, err := experiments.RepairComparison(*trials, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("interpretation:")
	fmt.Println("  - Sawada'89 registers a single faulty address: anything beyond one")
	fmt.Println("    faulty word defeats it.")
	fmt.Println("  - Chen-Sunada'93 repairs two faulty addresses per subblock and can")
	fmt.Println("    retire whole subblocks, but compares its capture registers")
	fmt.Println("    SEQUENTIALLY on every access (cs_cmp_ops), a growing delay the")
	fmt.Println("    paper calls impractical for high-speed embedded RAM.")
	fmt.Println("  - BISRAMGEN's TLB compares all entries in PARALLEL (one compare")
	fmt.Println("    delay regardless of spare count) and repairs whole rows; the")
	fmt.Println("    2k-pass variant additionally survives faulty spares.")
}
