// Fault-injection campaign: throw random defects of every functional
// fault class at BISR RAM instances, run the complete microprogrammed
// self-test-and-repair flow on each, and compare the empirical repair
// rate with the Section VII analytic yield model — the Monte-Carlo
// validation behind Fig. 4.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bisr"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/yield"
)

func main() {
	var (
		trials = flag.Int("trials", 60, "trials per defect count")
		seed   = flag.Int64("seed", 2026, "random seed")
		iter   = flag.Bool("iterated", false, "use the 2k-pass iterated flow")
	)
	flag.Parse()

	cfg := sram.Config{Words: 256, BPW: 8, BPC: 4, SpareRows: 4}
	model := yield.Model{Rows: cfg.Rows(), Cols: cfg.Cols(), Spares: cfg.SpareRows, GrowthFactor: 1}
	rng := rand.New(rand.NewSource(*seed))

	fmt.Printf("array: %d words x %d bits, %d rows + %d spares; %d trials/point; iterated=%v\n\n",
		cfg.Words, cfg.BPW, cfg.Rows(), cfg.SpareRows, *trials, *iter)
	fmt.Printf("%8s %10s %10s %10s %12s %12s\n",
		"defects", "repaired", "verified", "overflow", "simulated", "analytic")

	for _, nd := range []int{1, 2, 3, 4, 5, 6, 8, 10} {
		var repaired, verified, overflow int
		for trial := 0; trial < *trials; trial++ {
			arr, err := sram.New(cfg)
			if err != nil {
				log.Fatalln("fault-campaign:", err)
			}
			arr.InjectRandom(nd, rng)
			ram := bisr.NewRAM(arr)
			ctl := bisr.NewController(ram)
			if *iter {
				ctl.MaxIterations = 4
			}
			out, err := ctl.Run()
			if err != nil {
				log.Fatal(err)
			}
			if out.Overflow {
				overflow++
			}
			if !out.Repaired {
				continue
			}
			repaired++
			if march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(cfg.BPW), cfg.BPW).Pass() {
				verified++
			}
		}
		nEff := float64(nd) * float64(cfg.Rows()) / float64(cfg.TotalRows())
		analytic := model.YieldBISR(nEff)
		if *iter {
			analytic = model.YieldBISRIterated(nEff)
		}
		fmt.Printf("%8d %9d%% %9d%% %10d %11.0f%% %11.0f%%\n",
			nd, 100*repaired / *trials, 100*verified / *trials, overflow,
			100*float64(repaired)/float64(*trials), 100*analytic)
	}
	fmt.Println("\nsimulated = full two-pass IFA-9 BIST + TLB row repair on the behavioural array;")
	fmt.Println("analytic  = binomial row-repairability model (coupling/SOF defects make the")
	fmt.Println("            simulation slightly pessimistic relative to the stuck-at-only model).")
}
