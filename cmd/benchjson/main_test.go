package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func stat(ns, allocs float64) Stat {
	return Stat{NsOp: ns, AllocsOp: allocs, Runs: 1}
}

// TestPrintDelta: only benchmarks beyond regressFactor on ns/op or
// allocs/op are reported as regressed; additions and removals are
// called out but never fail the gate; a zero baseline axis (no
// allocs/op line) must not divide into +Inf.
func TestPrintDelta(t *testing.T) {
	base := Doc{Benchmarks: map[string]Stat{
		"BenchmarkSteady":   stat(1000, 10),
		"BenchmarkFaster":   stat(1000, 10),
		"BenchmarkSlower":   stat(1000, 10),
		"BenchmarkAllocier": stat(1000, 10),
		"BenchmarkNoAllocs": stat(1000, 0),
		"BenchmarkDropped":  stat(1000, 10),
	}}
	fresh := Doc{Benchmarks: map[string]Stat{
		"BenchmarkSteady":   stat(1900, 19), // under 2x on both axes
		"BenchmarkFaster":   stat(100, 1),
		"BenchmarkSlower":   stat(2100, 10), // ns/op regression
		"BenchmarkAllocier": stat(1000, 21), // allocs/op regression
		"BenchmarkNoAllocs": stat(1000, 5),  // baseline allocs 0: never regressed
		"BenchmarkAdded":    stat(5, 5),
	}}

	var sb strings.Builder
	regressed := printDelta(&sb, "results/BENCH_X.json", base, fresh)
	if len(regressed) != 2 || regressed[0] != "BenchmarkAllocier" || regressed[1] != "BenchmarkSlower" {
		t.Fatalf("regressed = %v, want [BenchmarkAllocier BenchmarkSlower]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkAdded", "new", "absent from fresh run: BenchmarkDropped", "REGRESSED"} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSED") != 2 {
		t.Fatalf("want exactly 2 REGRESSED rows:\n%s", out)
	}
}

// TestLoadDoc: the baseline loader rejects missing files, broken
// JSON, and documents with no benchmarks, and round-trips a document
// written by this tool's own schema.
func TestLoadDoc(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadDoc(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadDoc(bad); err == nil {
		t.Fatal("malformed baseline must error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":{}}`), 0o644)
	if _, err := loadDoc(empty); err == nil {
		t.Fatal("baseline without benchmarks must error")
	}
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"go_version":"go1.24","benchmarks":{"BenchmarkX":{"ns_op":12.5,"allocs_op":3,"runs":3}}}`), 0o644)
	d, err := loadDoc(good)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.Benchmarks["BenchmarkX"]; s.NsOp != 12.5 || s.AllocsOp != 3 || s.Runs != 3 {
		t.Fatalf("round-trip: %+v", s)
	}
}

// TestBenchLine: the parser splits the -N GOMAXPROCS suffix into its
// own capture and tolerates rows without -benchmem columns.
func TestBenchLine(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkCoverage-8   100   26500000 ns/op   1048576 B/op   14 allocs/op")
	if m == nil || m[1] != "BenchmarkCoverage" || m[2] != "8" || m[4] != "26500000" || m[6] != "14" {
		t.Fatalf("full row: %v", m)
	}
	m = benchLine.FindStringSubmatch("BenchmarkTLBLookup   500000   2103 ns/op")
	if m == nil || m[1] != "BenchmarkTLBLookup" || m[2] != "" || m[5] != "" {
		t.Fatalf("bare row: %v", m)
	}
}

// TestPrintDeltaSkipsCPUMismatch: a fresh parallel measurement against
// a serial baseline (different per-benchmark gomaxprocs) is reported
// but never gates, no matter how large the ratio looks.
func TestPrintDeltaSkipsCPUMismatch(t *testing.T) {
	base := Doc{Benchmarks: map[string]Stat{
		"BenchmarkParallel": stat(1000, 10), // serial baseline: gomaxprocs 0
		"BenchmarkMatched":  {NsOp: 1000, AllocsOp: 10, Runs: 1, GOMAXPROCS: 4},
	}}
	fresh := Doc{Benchmarks: map[string]Stat{
		"BenchmarkParallel": {NsOp: 9000, AllocsOp: 90, Runs: 1, GOMAXPROCS: 4},
		"BenchmarkMatched":  {NsOp: 2500, AllocsOp: 10, Runs: 1, GOMAXPROCS: 4},
	}}
	var sb strings.Builder
	regressed := printDelta(&sb, "results/BENCH_X.json", base, fresh)
	if len(regressed) != 1 || regressed[0] != "BenchmarkMatched" {
		t.Fatalf("regressed = %v, want [BenchmarkMatched] only", regressed)
	}
	if !strings.Contains(sb.String(), "cpu-mismatch (4 vs 0), skipped") {
		t.Fatalf("mismatch row not called out:\n%s", sb.String())
	}
}
