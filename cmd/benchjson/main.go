// Command benchjson converts `go test -bench -benchmem` text output
// into the stable machine-readable form checked in under results/
// (BENCH_<pr>.json): a JSON object mapping benchmark name to its
// measured ns/op, bytes/op and allocs/op. With -count > 1 the
// repeated lines for one benchmark are averaged and the run count is
// recorded, so noisy single runs do not dominate the checked-in
// numbers.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 . | go run ./cmd/benchjson -o results/BENCH_5.json
//
// The output schema (documented in EXPERIMENTS.md) is:
//
//	{
//	  "go_version": "go1.24.0",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "gomaxprocs": 1,
//	  "benchmarks": {
//	    "BenchmarkCompile64kbyte": {
//	      "ns_op": 9720000.0, "bytes_op": 6250787.0,
//	      "allocs_op": 83757.0, "runs": 3, "gomaxprocs": 4
//	    }, ...
//	  }
//	}
//
// Benchmark names are stripped of the -N GOMAXPROCS suffix Go appends
// under parallelism, so keys stay stable across machines; the suffix
// value itself is recorded per benchmark as "gomaxprocs" (omitted for
// serial rows). When one benchmark appears at several proc counts —
// a -cpu pass — the highest-proc measurement is kept. The -baseline
// delta only gates pairs whose gomaxprocs match, so a newly
// parallelised benchmark cannot false-flag against a serial baseline.
//
// With -baseline <results/BENCH_*.json> the fresh run is additionally
// diffed against the checked-in document: a per-benchmark table of
// ns/op and allocs/op ratios (fresh/baseline) goes to stderr, and any
// benchmark more than 2x slower or 2x more allocation-heavy on either
// axis fails the run with exit 1. -tolerate downgrades that failure
// to a warning — the soft-gate form `make check` uses, where
// single-iteration numbers are too noisy to block a merge.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Stat accumulates the averaged measurements of one benchmark.
type Stat struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
	// GOMAXPROCS is the per-benchmark -N suffix Go appends when the
	// benchmark ran with GOMAXPROCS > 1 (e.g. a -cpu pass); 0 means
	// the row carried no suffix (a serial run). Baseline deltas only
	// compare entries whose proc counts match — a parallel fresh run
	// against a serial baseline measures the machine, not the code.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// Doc is the output schema.
type Doc struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPU        string          `json:"cpu,omitempty"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Benchmarks map[string]Stat `json:"benchmarks"`
}

// benchLine matches one result row, e.g.
//
//	BenchmarkExtract6TArray-8   100   11300000 ns/op   524288 B/op   1024 allocs/op
//
// The -N suffix (Go's GOMAXPROCS marker) is captured separately so the
// proc count lands in the per-benchmark schema instead of the key.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// regressFactor is the ratio beyond which a benchmark counts as
// regressed versus the baseline, on ns/op or allocs/op.
const regressFactor = 2.0

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	baseline := flag.String("baseline", "",
		"checked-in results/BENCH_*.json to diff against; prints per-benchmark ns/op and allocs/op ratios and fails on >2x regressions")
	tolerate := flag.Bool("tolerate", false,
		"with -baseline: report regressions but exit 0 anyway (soft gate)")
	flag.Parse()

	type acc struct {
		name       string
		ns, by, al float64
		runs       int
		procs      int
	}
	// One accumulator per (name, procs): a -cpu pass emits the same
	// benchmark at several proc counts, which must not average together.
	sums := map[string]*acc{}
	var cpu string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		procs := 0
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		key := m[1] + "\x00" + m[2]
		a := sums[key]
		if a == nil {
			a = &acc{name: m[1], procs: procs}
			sums[key] = a
		}
		ns, _ := strconv.ParseFloat(m[4], 64)
		a.ns += ns
		if m[5] != "" {
			by, _ := strconv.ParseFloat(m[5], 64)
			a.by += by
		}
		if m[6] != "" {
			al, _ := strconv.ParseFloat(m[6], 64)
			a.al += al
		}
		a.runs++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	doc := Doc{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Stat, len(sums)),
	}
	// Keys stay stable across machines (no -N suffix); when a benchmark
	// ran at several proc counts, the highest wins — that is the run
	// that exercises the parallelism the -cpu pass was added for.
	for _, a := range sums {
		if prev, ok := doc.Benchmarks[a.name]; ok && prev.GOMAXPROCS >= a.procs {
			continue
		}
		n := float64(a.runs)
		doc.Benchmarks[a.name] = Stat{
			NsOp:       round1(a.ns / n),
			BytesOp:    round1(a.by / n),
			AllocsOp:   round1(a.al / n),
			Runs:       a.runs,
			GOMAXPROCS: a.procs,
		}
	}

	// encoding/json sorts map keys, so the document is reproducible up
	// to measurement noise; keep a deterministic trailing newline.
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(sums))
		for n := range sums {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n",
			len(names), *out, strings.Join(names[:min(len(names), 5)], ", "))
	}

	if *baseline != "" {
		base, err := loadDoc(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regressed := printDelta(os.Stderr, *baseline, base, doc)
		if len(regressed) > 0 {
			verb := "failing"
			if *tolerate {
				verb = "tolerated (-tolerate)"
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed >%gx vs %s: %s — %s\n",
				len(regressed), regressFactor, *baseline, strings.Join(regressed, ", "), verb)
			if !*tolerate {
				os.Exit(1)
			}
		}
	}
}

// loadDoc reads a previously written benchmark document.
func loadDoc(path string) (Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, fmt.Errorf("baseline: %w", err)
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return Doc{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return Doc{}, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return d, nil
}

// printDelta writes the per-benchmark fresh/baseline ratio table for
// every benchmark present in both documents and returns the names
// that regressed more than regressFactor on ns/op or allocs/op.
// Benchmarks new since the baseline are listed without ratios;
// benchmarks that vanished are called out so a silently dropped
// measurement cannot masquerade as a clean diff.
func printDelta(w io.Writer, basePath string, base, fresh Doc) (regressed []string) {
	names := make([]string, 0, len(fresh.Benchmarks))
	for n := range fresh.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchjson: delta vs %s (fresh/baseline; >%gx on ns/op or allocs/op regresses)\n",
		basePath, regressFactor)
	fmt.Fprintf(w, "  %-36s %14s %12s %9s %9s\n", "benchmark", "ns/op", "allocs/op", "ns", "allocs")
	for _, n := range names {
		f := fresh.Benchmarks[n]
		b, ok := base.Benchmarks[n]
		if !ok {
			fmt.Fprintf(w, "  %-36s %14.1f %12.1f %9s %9s  new\n", n, f.NsOp, f.AllocsOp, "-", "-")
			continue
		}
		if f.GOMAXPROCS != b.GOMAXPROCS {
			// A parallel fresh run against a serial baseline (or the
			// reverse) compares machine parallelism, not code: report,
			// never gate.
			fmt.Fprintf(w, "  %-36s %14.1f %12.1f %9s %9s  cpu-mismatch (%d vs %d), skipped\n",
				n, f.NsOp, f.AllocsOp, "-", "-", f.GOMAXPROCS, b.GOMAXPROCS)
			continue
		}
		nsR, alR := ratio(f.NsOp, b.NsOp), ratio(f.AllocsOp, b.AllocsOp)
		mark := ""
		if nsR > regressFactor || alR > regressFactor {
			mark = "  REGRESSED"
			regressed = append(regressed, n)
		}
		fmt.Fprintf(w, "  %-36s %14.1f %12.1f %8.2fx %8.2fx%s\n", n, f.NsOp, f.AllocsOp, nsR, alR, mark)
	}
	var gone []string
	for n := range base.Benchmarks {
		if _, ok := fresh.Benchmarks[n]; !ok {
			gone = append(gone, n)
		}
	}
	if len(gone) > 0 {
		sort.Strings(gone)
		fmt.Fprintf(w, "  (absent from fresh run: %s)\n", strings.Join(gone, ", "))
	}
	return regressed
}

// ratio guards the division: a zero baseline axis (allocs/op is not
// reported for allocation-free benchmarks) compares as 1.0 rather
// than poisoning the gate with +Inf.
func ratio(fresh, base float64) float64 {
	if base <= 0 {
		return 1
	}
	return fresh / base
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
