// Command benchjson converts `go test -bench -benchmem` text output
// into the stable machine-readable form checked in under results/
// (BENCH_<pr>.json): a JSON object mapping benchmark name to its
// measured ns/op, bytes/op and allocs/op. With -count > 1 the
// repeated lines for one benchmark are averaged and the run count is
// recorded, so noisy single runs do not dominate the checked-in
// numbers.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 . | go run ./cmd/benchjson -o results/BENCH_5.json
//
// The output schema (documented in EXPERIMENTS.md) is:
//
//	{
//	  "go_version": "go1.24.0",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "gomaxprocs": 1,
//	  "benchmarks": {
//	    "BenchmarkCompile64kbyte": {
//	      "ns_op": 9720000.0, "bytes_op": 6250787.0,
//	      "allocs_op": 83757.0, "runs": 3
//	    }, ...
//	  }
//	}
//
// Benchmark names are stripped of the -N GOMAXPROCS suffix Go appends
// under parallelism, so keys stay stable across machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Stat accumulates the averaged measurements of one benchmark.
type Stat struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
}

// Doc is the output schema.
type Doc struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPU        string          `json:"cpu,omitempty"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Benchmarks map[string]Stat `json:"benchmarks"`
}

// benchLine matches one result row, e.g.
//
//	BenchmarkExtract6TArray-8   100   11300000 ns/op   524288 B/op   1024 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	type acc struct {
		ns, by, al float64
		runs       int
	}
	sums := map[string]*acc{}
	var cpu string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := sums[m[1]]
		if a == nil {
			a = &acc{}
			sums[m[1]] = a
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		a.ns += ns
		if m[4] != "" {
			by, _ := strconv.ParseFloat(m[4], 64)
			a.by += by
		}
		if m[5] != "" {
			al, _ := strconv.ParseFloat(m[5], 64)
			a.al += al
		}
		a.runs++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	doc := Doc{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Stat, len(sums)),
	}
	for name, a := range sums {
		n := float64(a.runs)
		doc.Benchmarks[name] = Stat{
			NsOp:     round1(a.ns / n),
			BytesOp:  round1(a.by / n),
			AllocsOp: round1(a.al / n),
			Runs:     a.runs,
		}
	}

	// encoding/json sorts map keys, so the document is reproducible up
	// to measurement noise; keep a deterministic trailing newline.
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n",
		len(names), *out, strings.Join(names[:min(len(names), 5)], ", "))
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
