// Command bisrsim runs fault-injection campaigns against the
// behavioural BISR RAM: it injects random defects, executes the
// microprogrammed two-pass (or iterated 2k-pass) self-test-and-repair
// flow, and reports repair outcomes, spare usage and march-test
// verification.
//
// Example:
//
//	bisrsim -words 1024 -bpw 8 -bpc 4 -spares 4 -faults 3 -trials 100
//
// The `faultcampaign` subcommand instead runs the adversarial-input
// campaign against the full compiler pipeline and exits non-zero if
// any input produced a panic, hang or untyped error:
//
//	bisrsim faultcampaign [-v] [-timeout 30s]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/faultcampaign"
	"repro/internal/logicsim"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/sram"
)

// fail reports a pipeline error, leading with its stable ERR_* code
// name, and exits non-zero. Typed errors already render their own
// code; untyped failures get an explicit ERR_UNKNOWN prefix.
func fail(err error) {
	if cerr.IsTyped(err) {
		fmt.Fprintf(os.Stderr, "bisrsim: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "bisrsim: %s: %v\n", cerr.CodeOf(err), err)
	}
	os.Exit(1)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "faultcampaign" {
		runFaultCampaign(os.Args[2:])
		return
	}
	var (
		words  = flag.Int("words", 1024, "number of words")
		bpw    = flag.Int("bpw", 8, "bits per word (<= 64)")
		bpc    = flag.Int("bpc", 4, "bits per column")
		spares = flag.Int("spares", 4, "spare rows")
		faults = flag.Int("faults", 3, "random faults injected per trial")
		trials = flag.Int("trials", 50, "number of trials")
		iters  = flag.Int("iterations", 1, "max test-and-repair iterations (2k-pass when > 1)")
		seed   = flag.Int64("seed", 1, "random seed")
		v      = flag.Bool("v", false, "per-trial detail")
		gate   = flag.Bool("gatelevel", false, "run one trial on the gate-level BIST+BISR netlist instead")
		vcd    = flag.String("vcd", "", "with -gatelevel: dump control waveforms to this VCD file")
	)
	flag.Parse()

	// Geometry validation routes through the shared canon loader: the
	// simulator accepts exactly the envelope the compiler (CLI and
	// daemon) accepts, rather than keeping a looser private check.
	req := canon.Request{Words: *words, BPW: *bpw, BPC: *bpc, Spares: *spares}
	p, err := req.Params()
	if err != nil {
		fail(err)
	}
	cfg := sram.Config{Words: p.Words, BPW: p.BPW, BPC: p.BPC, SpareRows: p.Spares}
	if err := cfg.Validate(); err != nil {
		fail(err) // behavioural-model limits (e.g. bpw <= 64) on top of the envelope
	}
	if *gate {
		runGateLevel(cfg, *faults, *seed, *vcd)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	var repaired, verified, overflow int
	var totalSpares, totalCaptures, totalIters int
	for trial := 0; trial < *trials; trial++ {
		arr, err := sram.New(cfg)
		if err != nil {
			fail(err)
		}
		victims := arr.InjectRandom(*faults, rng)
		ram := bisr.NewRAM(arr)
		ctl := bisr.NewController(ram)
		ctl.MaxIterations = *iters
		out, err := ctl.Run()
		if err != nil {
			fail(err)
		}
		pass := false
		if out.Repaired {
			repaired++
			pass = march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(*bpw), *bpw).Pass()
			if pass {
				verified++
			}
		}
		if out.Overflow {
			overflow++
		}
		totalSpares += out.SparesUsed
		totalCaptures += out.Captures
		totalIters += out.Iterations
		if *v {
			fmt.Printf("trial %3d: %d faults on %d cells, repaired=%v verified=%v spares=%d iters=%d\n",
				trial, arr.FaultCount(), len(victims), out.Repaired, pass, out.SparesUsed, out.Iterations)
		}
	}
	n := float64(*trials)
	fmt.Printf("configuration: %d words x %d bits (bpc %d), %d spare rows, %d faults/trial, %d max iterations\n",
		*words, *bpw, *bpc, *spares, *faults, *iters)
	fmt.Printf("repaired:    %d/%d (%.1f%%)\n", repaired, *trials, 100*float64(repaired)/n)
	fmt.Printf("verified:    %d/%d post-repair march passes\n", verified, repaired)
	fmt.Printf("overflowed:  %d trials exhausted the TLB\n", overflow)
	fmt.Printf("avg spares used: %.2f, avg captures: %.2f, avg iterations: %.2f\n",
		float64(totalSpares)/n, float64(totalCaptures)/n, float64(totalIters)/n)
}

// runGateLevel executes one fault-injection trial on the full
// gate-level BIST+BISR netlist, optionally dumping control waveforms.
func runGateLevel(cfg sram.Config, faults int, seed int64, vcdPath string) {
	arr, err := sram.New(cfg)
	if err != nil {
		fail(err)
	}
	arr.InjectRandom(faults, rand.New(rand.NewSource(seed)))
	prog, err := bist.Assemble(march.IFA9())
	if err != nil {
		fail(err)
	}
	g, err := bisr.NewGateLevel(arr, prog)
	if err != nil {
		fail(err)
	}
	var rec *logicsim.VCDRecorder
	if vcdPath != "" {
		rec = logicsim.NewVCDRecorder(g.Sim, g.WatchNets())
	}
	if err := g.Run(20_000_000); err != nil {
		fail(err)
	}
	gates, dffs := g.GateCount()
	fmt.Printf("gate-level run: %d gates, %d flip-flops, %d cycles\n", gates, dffs, g.Cycles)
	fmt.Printf("faults injected: %d; captures: %d; repaired: %v; spares used: %d\n",
		arr.FaultCount(), g.Captures, g.Repaired(), g.SparesUsed())
	if rec != nil {
		f, err := os.Create(vcdPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := rec.Write(f, "1ns"); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d timesteps)\n", vcdPath, rec.Events())
	}
}

// runFaultCampaign executes the built-in adversarial-input campaign
// against the full compile pipeline and reports the classified
// outcomes. Exit status is non-zero unless every case ended in a clean
// compile or a typed error.
func runFaultCampaign(args []string) {
	fs := flag.NewFlagSet("faultcampaign", flag.ExitOnError)
	var (
		verbose  = fs.Bool("v", false, "print every case, not just failures")
		timeout  = fs.Duration("timeout", faultcampaign.DefaultTimeout, "per-case deadline")
		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON of the campaign (one span per case, pipeline stages nested)")
	)
	_ = fs.Parse(args)

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("faultcampaign")
	}
	cases := faultcampaign.Cases()
	fmt.Printf("fault campaign: %d adversarial inputs, %v per-case deadline\n", len(cases), *timeout)
	rep := faultcampaign.RunTraced(cases, *timeout, tr)
	if tr != nil {
		doc, err := tr.ChromeJSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*traceOut, doc, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d spans; open in chrome://tracing)\n", *traceOut, tr.Len())
	}
	for _, res := range rep.Results {
		bad := !res.Outcome.Acceptable()
		if !*verbose && !bad {
			continue
		}
		code := ""
		if res.Code.String() != "ERR_UNKNOWN" {
			code = " " + res.Code.String()
		}
		fmt.Printf("  %-38s [%-6s] %-12s%s (%s)\n", res.Name, res.Kind, res.Outcome, code, res.Elapsed.Round(time.Microsecond))
	}
	c := rep.Counts()
	fmt.Printf("outcomes: %d ok, %d typed-error, %d untyped, %d panic, %d hang\n",
		c[faultcampaign.OK], c[faultcampaign.TypedError], c[faultcampaign.UntypedError],
		c[faultcampaign.Panicked], c[faultcampaign.Hung])
	if !rep.Clean() {
		fmt.Fprintln(os.Stderr, "bisrsim: FAULT CAMPAIGN FAILED — pipeline produced a panic, hang or untyped error")
		os.Exit(1)
	}
	fmt.Println("fault campaign clean: every outcome is a typed error or a successful compile")
}
