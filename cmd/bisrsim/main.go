// Command bisrsim runs fault-injection campaigns against the
// behavioural BISR RAM: it injects random defects, executes the
// microprogrammed two-pass (or iterated 2k-pass) self-test-and-repair
// flow, and reports repair outcomes, spare usage and march-test
// verification.
//
// Example:
//
//	bisrsim -words 1024 -bpw 8 -bpc 4 -spares 4 -faults 3 -trials 100
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/logicsim"
	"repro/internal/march"
	"repro/internal/sram"
)

func main() {
	var (
		words  = flag.Int("words", 1024, "number of words")
		bpw    = flag.Int("bpw", 8, "bits per word (<= 64)")
		bpc    = flag.Int("bpc", 4, "bits per column")
		spares = flag.Int("spares", 4, "spare rows")
		faults = flag.Int("faults", 3, "random faults injected per trial")
		trials = flag.Int("trials", 50, "number of trials")
		iters  = flag.Int("iterations", 1, "max test-and-repair iterations (2k-pass when > 1)")
		seed   = flag.Int64("seed", 1, "random seed")
		v      = flag.Bool("v", false, "per-trial detail")
		gate   = flag.Bool("gatelevel", false, "run one trial on the gate-level BIST+BISR netlist instead")
		vcd    = flag.String("vcd", "", "with -gatelevel: dump control waveforms to this VCD file")
	)
	flag.Parse()

	cfg := sram.Config{Words: *words, BPW: *bpw, BPC: *bpc, SpareRows: *spares}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bisrsim:", err)
		os.Exit(1)
	}
	if *gate {
		runGateLevel(cfg, *faults, *seed, *vcd)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	var repaired, verified, overflow int
	var totalSpares, totalCaptures, totalIters int
	for trial := 0; trial < *trials; trial++ {
		arr := sram.MustNew(cfg)
		victims := arr.InjectRandom(*faults, rng)
		ram := bisr.NewRAM(arr)
		ctl := bisr.NewController(ram)
		ctl.MaxIterations = *iters
		out, err := ctl.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bisrsim:", err)
			os.Exit(1)
		}
		pass := false
		if out.Repaired {
			repaired++
			pass = march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(*bpw), *bpw).Pass()
			if pass {
				verified++
			}
		}
		if out.Overflow {
			overflow++
		}
		totalSpares += out.SparesUsed
		totalCaptures += out.Captures
		totalIters += out.Iterations
		if *v {
			fmt.Printf("trial %3d: %d faults on %d cells, repaired=%v verified=%v spares=%d iters=%d\n",
				trial, arr.FaultCount(), len(victims), out.Repaired, pass, out.SparesUsed, out.Iterations)
		}
	}
	n := float64(*trials)
	fmt.Printf("configuration: %d words x %d bits (bpc %d), %d spare rows, %d faults/trial, %d max iterations\n",
		*words, *bpw, *bpc, *spares, *faults, *iters)
	fmt.Printf("repaired:    %d/%d (%.1f%%)\n", repaired, *trials, 100*float64(repaired)/n)
	fmt.Printf("verified:    %d/%d post-repair march passes\n", verified, repaired)
	fmt.Printf("overflowed:  %d trials exhausted the TLB\n", overflow)
	fmt.Printf("avg spares used: %.2f, avg captures: %.2f, avg iterations: %.2f\n",
		float64(totalSpares)/n, float64(totalCaptures)/n, float64(totalIters)/n)
}

// runGateLevel executes one fault-injection trial on the full
// gate-level BIST+BISR netlist, optionally dumping control waveforms.
func runGateLevel(cfg sram.Config, faults int, seed int64, vcdPath string) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bisrsim:", err)
		os.Exit(1)
	}
	arr := sram.MustNew(cfg)
	arr.InjectRandom(faults, rand.New(rand.NewSource(seed)))
	prog, err := bist.Assemble(march.IFA9())
	if err != nil {
		fail(err)
	}
	g, err := bisr.NewGateLevel(arr, prog)
	if err != nil {
		fail(err)
	}
	var rec *logicsim.VCDRecorder
	if vcdPath != "" {
		rec = logicsim.NewVCDRecorder(g.Sim, g.WatchNets())
	}
	if err := g.Run(20_000_000); err != nil {
		fail(err)
	}
	gates, dffs := g.GateCount()
	fmt.Printf("gate-level run: %d gates, %d flip-flops, %d cycles\n", gates, dffs, g.Cycles)
	fmt.Printf("faults injected: %d; captures: %d; repaired: %v; spares used: %d\n",
		arr.FaultCount(), g.Captures, g.Repaired(), g.SparesUsed())
	if rec != nil {
		f, err := os.Create(vcdPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := rec.Write(f, "1ns"); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d timesteps)\n", vcdPath, rec.Events())
	}
}
