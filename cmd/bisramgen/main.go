// Command bisramgen is the compiler CLI: it takes the circuit
// parameters of the paper's Fig. 1 (words, bits per word, bits per
// column, spare rows, critical gate size, strap spacing, process) and
// generates the BISR-RAM module: an SVG layout plot, a datasheet, the
// TRPLA control plane files, and an extracted SPICE deck for the
// sense amplifier leaf cell.
//
// Example:
//
//	bisramgen -words 4096 -bpw 128 -bpc 8 -spares 4 -strap 32 \
//	          -process cda07u3m1p -out fig6
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bist"
	"repro/internal/cerr"
	"repro/internal/compiler"
	"repro/internal/gds"
	"repro/internal/march"
	"repro/internal/render"
	"repro/internal/spice"
	"repro/internal/tech"
)

func main() {
	var (
		words    = flag.Int("words", 4096, "number of words (power of 2)")
		bpw      = flag.Int("bpw", 32, "bits per word")
		bpc      = flag.Int("bpc", 8, "bits per column (column mux ratio, power of 2)")
		spares   = flag.Int("spares", 4, "spare rows: 0, 4, 8 or 16")
		bufsize  = flag.Int("bufsize", 2, "critical gate size multiplier (1..4)")
		strap    = flag.Int("strap", 32, "cells between straps (0 = none)")
		process  = flag.String("process", "cda07u3m1p", "process deck: "+fmt.Sprint(tech.Names()))
		procFile = flag.String("process-file", "", "load a user process deck (key/value text; see internal/tech.Parse)")
		corner   = flag.String("corner", "typ", "process corner: typ, slow, fast")
		test     = flag.String("test", "ifa9", "march algorithm: ifa9, ifa13, mats+, marchx, marchy, marchb, marchc-")
		custom   = flag.String("march", "", `custom march notation, e.g. "b(w0); u(r0,w1); d(r1,w0)"`)
		andFile  = flag.String("and-plane", "", "load TRPLA control code: AND plane file")
		orFile   = flag.String("or-plane", "", "load TRPLA control code: OR plane file")
		stBits   = flag.Int("state-bits", 5, "state register width for loaded plane files")
		outDir   = flag.String("out", "bisram_out", "output directory")
		ascii    = flag.Bool("ascii", false, "print an ASCII floorplan to stdout")
	)
	flag.Parse()

	var proc *tech.Process
	var err error
	if *procFile != "" {
		f, ferr := os.Open(*procFile)
		if ferr != nil {
			fatal(ferr)
		}
		proc, err = tech.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tech.Register(proc)
	} else {
		proc, err = tech.ByName(*process)
		if err != nil {
			fatal(err)
		}
	}
	alg, err := testByName(*test)
	if err != nil {
		fatal(err)
	}
	if *custom != "" {
		alg, err = march.Parse("custom", *custom)
		if err != nil {
			fatal(err)
		}
	}
	proc, err = proc.Corner(*corner)
	if err != nil {
		fatal(err)
	}
	p := compiler.Params{
		Words: *words, BPW: *bpw, BPC: *bpc, Spares: *spares,
		BufSize: *bufsize, StrapCells: *strap, Process: proc, Test: alg,
	}
	// The paper's runtime control-code path: user-edited plane files
	// replace the built-in microprogram.
	if *andFile != "" || *orFile != "" {
		if *andFile == "" || *orFile == "" {
			fatal(cerr.New(cerr.CodeInvalidParams, "both -and-plane and -or-plane are required"))
		}
		af, err := os.Open(*andFile)
		if err != nil {
			fatal(err)
		}
		defer af.Close()
		of, err := os.Open(*orFile)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		prog, err := bist.ReadPlanes("custom", *stBits, af, of)
		if err != nil {
			fatal(err)
		}
		p.Program = prog
	}
	d, err := compiler.Compile(p)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	// A degraded compile may have no floorplan (estimate-only rung of
	// the ladder): still emit the datasheet, report and control code,
	// just skip the layout artefacts.
	for _, deg := range d.Degradations {
		fmt.Fprintf(os.Stderr, "bisramgen: warning: degraded result: %s\n", deg)
	}
	if d.Top != nil {
		write("layout.svg", render.SVG(d.Top, render.Options{Depth: 0}))
		var gdsBuf strings.Builder
		if err := gds.Write(&gdsBuf, d.Top, d.Top.Name); err != nil {
			fatal(err)
		}
		write("layout.gds", gdsBuf.String())
	} else {
		fmt.Fprintln(os.Stderr, "bisramgen: warning: no floorplan — skipping layout.svg and layout.gds")
	}
	write("datasheet.txt", d.Datasheet())
	js, err := d.JSON()
	if err != nil {
		fatal(err)
	}
	write("datasheet.json", js)

	// TRPLA control code plane files (loaded back at runtime by the
	// tool, and editable to change the test algorithm).
	var andB, orB strings.Builder
	if err := d.Prog.WritePlanes(&andB, &orB); err != nil {
		fatal(err)
	}
	write("trpla_and.plane", andB.String())
	write("trpla_or.plane", orB.String())

	// Extracted SPICE deck for the sense amplifier leaf cell.
	ckt := spice.New()
	ckt.V("vdd", "xvdd", spice.DC(proc.VDD))
	d.Lib.SenseAmp.Extract(ckt, "x")
	write("senseamp.sp", ckt.Deck("extracted current-mode sense amplifier"))

	fmt.Println()
	fmt.Print(d.Datasheet())
	if *ascii && d.Top != nil {
		fmt.Println()
		fmt.Print(render.ASCII(d.Top, 78))
	}
}

func testByName(name string) (march.Test, error) {
	switch name {
	case "ifa9":
		return march.IFA9(), nil
	case "ifa13":
		return march.IFA13(), nil
	case "mats+":
		return march.MATSPlus(), nil
	case "marchx":
		return march.MarchX(), nil
	case "marchy":
		return march.MarchY(), nil
	case "marchb":
		return march.MarchB(), nil
	case "marchc-":
		return march.MarchCMinus(), nil
	}
	return march.Test{}, cerr.New(cerr.CodeInvalidParams, "unknown test %q", name)
}

// fatal reports a pipeline error, leading with its stable ERR_* code
// name, and exits non-zero so scripts can branch on the taxonomy.
// Typed errors already render their own code; untyped OS-level
// failures get an explicit ERR_UNKNOWN prefix.
func fatal(err error) {
	if cerr.IsTyped(err) {
		fmt.Fprintf(os.Stderr, "bisramgen: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "bisramgen: %s: %v\n", cerr.CodeOf(err), err)
	}
	os.Exit(1)
}
