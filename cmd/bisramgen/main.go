// Command bisramgen is the compiler CLI: it takes the circuit
// parameters of the paper's Fig. 1 (words, bits per word, bits per
// column, spare rows, critical gate size, strap spacing, process) and
// generates the BISR-RAM module: an SVG layout plot, a datasheet, the
// TRPLA control plane files, and an extracted SPICE deck for the
// sense amplifier leaf cell.
//
// Flag parsing routes through internal/canon — the same request
// loader the bisramgend daemon uses — so validation, defaulting and
// content keying are identical no matter how a compile is invoked.
// -dump-request prints the daemon-compatible JSON request and its
// content address instead of compiling, so a CLI invocation can be
// replayed against a running service:
//
//	bisramgen -words 4096 -bpw 128 -dump-request | curl -sd @- localhost:8047/v1/compile
//
// Example:
//
//	bisramgen -words 4096 -bpw 128 -bpc 8 -spares 4 -strap 32 \
//	          -process cda07u3m1p -out fig6
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/cjson"
	"repro/internal/compiler"
	"repro/internal/gds"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/spice"
	"repro/internal/tech"
)

func main() {
	var (
		words    = flag.Int("words", 4096, "number of words (power of 2)")
		bpw      = flag.Int("bpw", 32, "bits per word")
		bpc      = flag.Int("bpc", 8, "bits per column (column mux ratio, power of 2)")
		spares   = flag.Int("spares", 4, "spare rows: 0, 4, 8 or 16")
		bufsize  = flag.Int("bufsize", canon.DefaultBufSize, "critical gate size multiplier (1..4)")
		strap    = flag.Int("strap", 32, "cells between straps (0 = none)")
		refine   = flag.Int("refine", 0, "simulated-annealing floorplan refinement moves (0 = off)")
		process  = flag.String("process", canon.DefaultProcess, "process deck: "+fmt.Sprint(tech.Names()))
		procFile = flag.String("process-file", "", "load a user process deck (key/value text; see internal/tech.Parse)")
		corner   = flag.String("corner", canon.DefaultCorner, "process corner: typ, slow, fast")
		test     = flag.String("test", canon.DefaultTest, "march algorithm: "+strings.Join(canon.TestNames(), ", "))
		custom   = flag.String("march", "", `custom march notation, e.g. "b(w0); u(r0,w1); d(r1,w0)"`)
		andFile  = flag.String("and-plane", "", "load TRPLA control code: AND plane file")
		orFile   = flag.String("or-plane", "", "load TRPLA control code: OR plane file")
		stBits   = flag.Int("state-bits", canon.DefaultStateBits, "state register width for loaded plane files")
		reqFile  = flag.String("request", "", "load a daemon-format JSON compile request (overrides the parameter flags)")
		dumpReq  = flag.String("dump-request", "", `print the request as daemon JSON and exit; "" compiles, "-" writes stdout, else a file path`)
		outDir   = flag.String("out", "bisram_out", "output directory")
		ascii    = flag.Bool("ascii", false, "print an ASCII floorplan to stdout")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the compile to this file (load in chrome://tracing)")
		par      = flag.Int("compile-par", runtime.GOMAXPROCS(0), "per-compile goroutine fan-out (output is byte-identical at any value; 1 = serial)")
	)
	// -dump-request doubles as a boolean-ish flag: plain
	// `-dump-request` with no value is awkward in the flag package, so
	// "-" means stdout.
	flag.Parse()

	req, err := requestFromFlags(
		*reqFile, *words, *bpw, *bpc, *spares, *bufsize, *strap, *refine,
		*process, *procFile, *corner, *test, *custom, *andFile, *orFile, *stBits)
	if err != nil {
		fatal(err)
	}

	if *dumpReq != "" {
		if err := writeRequest(req, *dumpReq); err != nil {
			fatal(err)
		}
		return
	}

	// One shared loader resolves deck/corner/march/planes and validates
	// the envelope; the CLI no longer has its own resolution path.
	p, err := req.Params()
	if err != nil {
		fatal(err)
	}
	// Local concurrency default, applied after keying material is
	// fixed: parallelism never reaches the canonical key or the dumped
	// request, it only bounds this process's goroutine fan-out. A
	// request file naming an explicit parallelism wins.
	if p.Parallelism == 0 && *par > 0 {
		p.Parallelism = *par
	}
	key, err := canon.KeyOfParams(p)
	if err != nil {
		fatal(err)
	}
	// -trace attaches a span collector to the compile context; the
	// recorded stage/kernel spans are written as Chrome trace-event JSON
	// after the run (even a failed one would have been, but fatal exits).
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
	}
	d, err := compiler.CompileCtx(ctx, p)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		doc, terr := tr.ChromeJSON()
		if terr != nil {
			fatal(terr)
		}
		if err := os.WriteFile(*traceOut, doc, 0o644); err != nil {
			fatal(cerr.Wrap(cerr.CodeInvalidParams, err, "bisramgen: writing -trace"))
		}
		fmt.Fprintf(os.Stderr, "bisramgen: wrote %s (%d spans; open in chrome://tracing)\n", *traceOut, tr.Len())
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	// A degraded compile may have no floorplan (estimate-only rung of
	// the ladder): still emit the datasheet, report and control code,
	// just skip the layout artefacts.
	for _, deg := range d.Degradations {
		fmt.Fprintf(os.Stderr, "bisramgen: warning: degraded result: %s\n", deg)
	}
	if d.Top != nil {
		write("layout.svg", render.SVG(d.Top, render.Options{Depth: 0}))
		var gdsBuf strings.Builder
		if err := gds.Write(&gdsBuf, d.Top, d.Top.Name); err != nil {
			fatal(err)
		}
		write("layout.gds", gdsBuf.String())
	} else {
		fmt.Fprintln(os.Stderr, "bisramgen: warning: no floorplan — skipping layout.svg and layout.gds")
	}
	write("datasheet.txt", d.Datasheet())
	js, err := d.JSON()
	if err != nil {
		fatal(err)
	}
	write("datasheet.json", js)

	// TRPLA control code plane files (loaded back at runtime by the
	// tool, and editable to change the test algorithm).
	var andB, orB strings.Builder
	if err := d.Prog.WritePlanes(&andB, &orB); err != nil {
		fatal(err)
	}
	write("trpla_and.plane", andB.String())
	write("trpla_or.plane", orB.String())

	// Extracted SPICE deck for the sense amplifier leaf cell.
	ckt := spice.New()
	ckt.V("vdd", "xvdd", spice.DC(p.Process.VDD))
	d.Lib.SenseAmp.Extract(ckt, "x")
	write("senseamp.sp", ckt.Deck("extracted current-mode sense amplifier"))

	fmt.Printf("\ncontent address: %s\n\n", key)
	fmt.Print(d.Datasheet())
	if *ascii && d.Top != nil {
		fmt.Println()
		fmt.Print(render.ASCII(d.Top, 78))
	}
}

// requestFromFlags assembles the daemon-format compile request from
// the CLI flags, inlining any referenced files (process deck, TRPLA
// planes) so the result is self-contained. When reqFile is set the
// request is loaded from it verbatim instead.
func requestFromFlags(reqFile string, words, bpw, bpc, spares, bufsize, strap, refine int,
	process, procFile, corner, test, custom, andFile, orFile string, stBits int) (canon.Request, error) {
	if reqFile != "" {
		data, err := os.ReadFile(reqFile)
		if err != nil {
			return canon.Request{}, cerr.Wrap(cerr.CodeInvalidParams, err, "bisramgen: reading -request")
		}
		return canon.ParseRequest(data)
	}
	req := canon.Request{
		Words: words, BPW: bpw, BPC: bpc, Spares: spares,
		BufSize: bufsize, StrapCells: strap, RefineIterations: refine,
		Process: process, Corner: corner,
		Test: test, March: custom,
	}
	if procFile != "" {
		deck, err := os.ReadFile(procFile)
		if err != nil {
			return canon.Request{}, cerr.Wrap(cerr.CodeDeckParse, err, "bisramgen: reading -process-file")
		}
		req.Deck = string(deck)
		req.Process = ""
	}
	// The paper's runtime control-code path: user-edited plane files
	// replace the built-in microprogram.
	if andFile != "" || orFile != "" {
		if andFile == "" || orFile == "" {
			return canon.Request{}, cerr.New(cerr.CodeInvalidParams, "both -and-plane and -or-plane are required")
		}
		and, err := os.ReadFile(andFile)
		if err != nil {
			return canon.Request{}, cerr.Wrap(cerr.CodePlaneParse, err, "bisramgen: reading -and-plane")
		}
		or, err := os.ReadFile(orFile)
		if err != nil {
			return canon.Request{}, cerr.Wrap(cerr.CodePlaneParse, err, "bisramgen: reading -or-plane")
		}
		req.ANDPlane, req.ORPlane = string(and), string(or)
		req.StateBits = stBits
	}
	return req, nil
}

// writeRequest renders the normalized request as canonical JSON plus
// its content address (on stderr), writing to stdout when dst is "-".
func writeRequest(req canon.Request, dst string) error {
	key, err := req.Key() // also fully validates the request
	if err != nil {
		return err
	}
	doc, err := cjson.MarshalIndent(req.Normalized())
	if err != nil {
		return err
	}
	if dst == "-" {
		os.Stdout.Write(doc)
	} else if err := os.WriteFile(dst, doc, 0o644); err != nil {
		return cerr.Wrap(cerr.CodeInvalidParams, err, "bisramgen: writing -dump-request")
	}
	fmt.Fprintf(os.Stderr, "bisramgen: content address %s\n", key)
	return nil
}

// fatal reports a pipeline error, leading with its stable ERR_* code
// name, and exits non-zero so scripts can branch on the taxonomy.
// Typed errors already render their own code; untyped OS-level
// failures get an explicit ERR_UNKNOWN prefix.
func fatal(err error) {
	if cerr.IsTyped(err) {
		fmt.Fprintf(os.Stderr, "bisramgen: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "bisramgen: %s: %v\n", cerr.CodeOf(err), err)
	}
	os.Exit(1)
}
