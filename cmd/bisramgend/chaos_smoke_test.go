package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// chaosMetrics extends storeMetrics with the fields the drills assert.
type chaosMetrics struct {
	Store *struct {
		Corrupt           uint64 `json:"corrupt"`
		QuarantineObjects int    `json:"quarantine_objects"`
	} `json:"store"`
	Queue struct {
		Completed uint64 `json:"completed"`
		Rejected  uint64 `json:"rejected"`
	} `json:"queue"`
}

// TestChaosSmoke is the resilience drill behind `make chaos-smoke`:
// three staged failures against the real binary.
//
//  1. Crash/resume: kill -9 a daemon mid-sweep; a restart over the
//     same store resumes the sweep under its original ID, recompiles
//     only unfinished points, and produces rows byte-identical to an
//     uninterrupted run.
//  2. Injected corruption: a chaos-spec'd store.read bit-flip is
//     detected, quarantined and recompiled — never served.
//  3. Overload burst: a stalled one-worker/one-slot daemon sheds
//     excess load with 429 + Retry-After while the retrying client
//     rides the burst out.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	t.Run("CrashResume", func(t *testing.T) { chaosCrashResume(t, bin) })
	t.Run("Corruption", func(t *testing.T) { chaosCorruption(t, bin) })
	t.Run("Overload", func(t *testing.T) { chaosOverload(t, bin) })
}

func chaosCrashResume(t *testing.T, bin string) {
	spec := sweep.Spec{
		Base: experiments.Fig45Base(),
		Axes: sweep.Axes{Spares: []int{0, 4, 8, 16}, Defects: []float64{0, 10}},
	}
	const unique = 4 // spares axis only; defects is analysis-only

	// Reference: the same sweep on an undisturbed daemon.
	ref := startDaemon(t, bin, "-store-dir", t.TempDir())
	refClient := sweep.NewClient(ref.base)
	want := runSweep(t, refClient, spec)
	ref.stop(t)

	// Victim generation: one worker and an injected 400 ms stage stall
	// per compile, so the sweep is reliably mid-flight when the process
	// dies. SIGKILL — no drain, no cleanup.
	dir := t.TempDir()
	d1 := startDaemon(t, bin, "-store-dir", dir, "-workers", "1",
		"-chaos-spec", `{"rules":[{"point":"compile.stage.floorplan","mode":"delay","delay_ms":400}]}`)
	c1 := sweep.NewClient(d1.base)
	st, err := c1.CreateSweep(spec)
	if err != nil {
		t.Fatalf("create sweep: %v", err)
	}
	markerDir := filepath.Join(dir, "sweeps", st.ID+".done")
	deadline := time.Now().Add(60 * time.Second)
	for countMarkers(t, markerDir) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no group finished within 60s\nstderr:\n%s", d1.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	survivors := countMarkers(t, markerDir)
	if survivors >= unique {
		t.Fatalf("sweep finished before the kill (%d markers); stall too short", survivors)
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL, mid-compile
		t.Fatal(err)
	}
	<-d1.exited

	// Restart over the same store: the journal must resume the sweep
	// under its original ID and replay finished groups from disk.
	d2 := startDaemon(t, bin, "-store-dir", dir)
	if !strings.Contains(d2.stderr.String(), "resumed 1 interrupted sweep") {
		t.Fatalf("restart did not announce a resume\nstderr:\n%s", d2.stderr.String())
	}
	c2 := sweep.NewClient(d2.base)
	got := waitSweepDone(t, c2, st.ID)

	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("resumed rows %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		g, w := got.Rows[i], want.Rows[i]
		// Cached differs by construction (resume replays journaled groups
		// through the store); every measured column must be identical.
		g.Cached, w.Cached = false, false
		if g != w {
			t.Fatalf("row %d drifted across crash/resume:\n got %+v\nwant %+v", i, g, w)
		}
	}

	// Zero recompiles of journaled points: the restarted daemon ran at
	// most the compiles the crash interrupted.
	var m chaosMetrics
	getJSON(t, d2.base+"/metrics", &m)
	if max := uint64(unique - survivors); m.Queue.Completed > max {
		t.Errorf("restart recompiled finished points: %d compiles, want <= %d", m.Queue.Completed, max)
	}
	// The finished sweep's journal record is gone.
	if recs, _ := filepath.Glob(filepath.Join(dir, "sweeps", "*.sweep")); len(recs) != 0 {
		t.Errorf("finished sweep left journal records %v", recs)
	}
	d2.stop(t)
}

func chaosCorruption(t *testing.T, bin string) {
	dir := t.TempDir()
	const req = `{"words":1024,"bpw":16,"bpc":4,"spares":4}`

	// Populate the store, drain cleanly.
	d1 := startDaemon(t, bin, "-store-dir", dir)
	first := postCompile(t, d1.base, req)
	d1.stop(t)

	// Restart with a one-shot read-path bit-flip. The daemon must catch
	// the damage (checksum), quarantine the object, and recompile —
	// the client never sees corrupt bytes, only a cache miss.
	d2 := startDaemon(t, bin, "-store-dir", dir,
		"-chaos-spec", `{"rules":[{"point":"store.read","mode":"corrupt","max":1}]}`)
	second := postCompile(t, d2.base, req)
	if second.Cached {
		t.Fatal("corrupted object served as a cache hit")
	}
	if second.Key != first.Key {
		t.Fatalf("recompile minted a different key: %q vs %q", second.Key, first.Key)
	}
	var m chaosMetrics
	getJSON(t, d2.base+"/metrics", &m)
	if m.Store == nil || m.Store.Corrupt < 1 {
		t.Errorf("corrupt counter not incremented: %+v", m.Store)
	}
	if m.Store != nil && m.Store.QuarantineObjects < 1 {
		t.Errorf("quarantine gauge %d, want >= 1", m.Store.QuarantineObjects)
	}
	// After quarantine + recompile the entry is clean again.
	third := postCompile(t, d2.base, req)
	if !third.Cached {
		t.Error("recompiled entry not served from cache")
	}
	d2.stop(t)
}

func chaosOverload(t *testing.T, bin string) {
	// One worker, one queue slot, and the first two jobs stalled 1.5 s
	// each: a burst must shed with 429 + Retry-After.
	d := startDaemon(t, bin, "-workers", "1", "-queue", "1",
		"-chaos-spec", `{"rules":[{"point":"queue.stall","mode":"delay","delay_ms":1500,"max":2}]}`)

	body := func(i int) string {
		return fmt.Sprintf(`{"words":%d,"bpw":8,"bpc":4,"spares":4}`, 256<<i)
	}
	const burst = 6
	statuses := make([]int, burst)
	retryAfters := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(d.base+"/v1/compile", "application/json", strings.NewReader(body(i)))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfters[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, code := range statuses {
		if code != http.StatusTooManyRequests {
			continue
		}
		shed++
		if retryAfters[i] == "" {
			t.Errorf("429 response %d missing Retry-After", i)
		}
	}
	if shed == 0 {
		t.Fatalf("overload burst shed nothing: statuses %v", statuses)
	}
	var m chaosMetrics
	getJSON(t, d.base+"/metrics", &m)
	if m.Queue.Rejected < uint64(shed) {
		t.Errorf("queue.rejected = %d, want >= %d", m.Queue.Rejected, shed)
	}

	// The retrying client rides the same storm out: a fresh body
	// submitted while the stall drains must still complete.
	c := sweep.NewClient(d.base)
	c.Retry.BaseDelay = 20 * time.Millisecond
	if _, err := c.Compile([]byte(`{"words":512,"bpw":16,"bpc":4,"spares":8}`)); err != nil {
		t.Fatalf("retrying client failed to ride out the burst: %v", err)
	}
	d.stop(t)
}

// runSweep creates a sweep, waits for it, and returns its rows.
func runSweep(t *testing.T, c *sweep.Client, spec sweep.Spec) *sweep.Results {
	t.Helper()
	st, err := c.CreateSweep(spec)
	if err != nil {
		t.Fatalf("create sweep: %v", err)
	}
	return waitSweepDone(t, c, st.ID)
}

// waitSweepDone polls a sweep to its terminal state and fetches
// complete results.
func waitSweepDone(t *testing.T, c *sweep.Client, id string) *sweep.Results {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.WaitSweep(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait sweep %s: %v", id, err)
	}
	if st.State != "done" || st.Failed != 0 {
		t.Fatalf("sweep %s terminal state %q (failed %d)", id, st.State, st.Failed)
	}
	res, err := c.SweepResults(id)
	if err != nil {
		t.Fatalf("results %s: %v", id, err)
	}
	if !res.Complete {
		t.Fatalf("results for %s incomplete", id)
	}
	return res
}

func countMarkers(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0 // not created yet
	}
	return len(ents)
}
