package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestObsSmoke is the end-to-end observability check behind `make
// obs-smoke`: build the real binary, boot it with pprof and the
// slow-compile log enabled, POST one compile, then assert
//
//  1. /metrics?format=prometheus parses as text exposition and carries
//     nonzero compile_stage_duration_seconds buckets,
//  2. GET /debug/trace/{job_id} returns a loadable Chrome trace-event
//     document containing the queue-wait and pipeline stage spans,
//  3. /debug/pprof/ answers (the -pprof flag works end to end),
//  4. the slow-compile forensics line lands on stderr.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("obs smoke builds and runs the daemon binary")
	}

	bin := filepath.Join(t.TempDir(), "bisramgend")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	var stderr bytes.Buffer
	daemon := exec.Command(bin, "-addr", addr, "-workers", "2", "-drain-timeout", "20s",
		"-pprof", "-slow-compile", "1ns", "-quiet")
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill() //nolint:errcheck // backstop for early t.Fatal paths

	base := "http://" + addr
	waitHealthy(t, base, exited)

	// One real compile populates every histogram and mints a trace.
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"words":256,"bpw":8,"bpc":4,"spares":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Job struct {
			JobID string `json:"job_id"`
			State string `json:"state"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	compiled := env.Job
	if resp.StatusCode != http.StatusOK || compiled.State != "done" || compiled.JobID == "" {
		t.Fatalf("compile: status %d %+v", resp.StatusCode, compiled)
	}

	// 1. Prometheus exposition: parse every sample line and require
	// nonzero compile_stage_duration_seconds bucket counts.
	expo := getText(t, base+"/metrics?format=prometheus")
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?[0-9.eE+-]+|[+-]Inf)$`)
	stageBuckets := regexp.MustCompile(`^compile_stage_duration_seconds_bucket\{stage="[^"]+",le="\+Inf"\} (\d+)$`)
	var stageObs int
	for _, line := range strings.Split(strings.TrimRight(expo, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
			continue
		}
		if m := stageBuckets.FindStringSubmatch(line); m != nil {
			n, _ := strconv.Atoi(m[1])
			stageObs += n
		}
	}
	if stageObs < 1 {
		t.Errorf("compile_stage_duration_seconds has no observations:\n%s", expo)
	}
	for _, want := range []string{"uptime_seconds", "go_goroutines", "build_info{", "jobs_queue_wait_seconds_count"} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// 2. The job trace is a loadable Chrome trace-event document with
	// the pipeline spans.
	traceDoc := getText(t, base+"/debug/trace/"+compiled.JobID)
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceDoc), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, traceDoc)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"queue.wait", "compile", "compile.floorplan", "compile.analysis"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// 3. pprof answers under the flag.
	if body := getText(t, base+"/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}

	// 4. The 1ns threshold makes every compile slow: the forensics dump
	// must be on stderr before shutdown.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM")
	}
	if !strings.Contains(stderr.String(), "SLOW COMPILE") {
		t.Errorf("stderr missing slow-compile forensics:\n%s", stderr.String())
	}
	fmt.Println("obs smoke ok:", len(doc.TraceEvents), "trace events,", stageObs, "stage observations")
}

// getText fetches a URL and returns the body, failing on non-200.
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}
