package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end service check behind `make
// serve-smoke`: build the real binary, start it on a free port, POST
// the same compile twice (the second must be a cache hit at least 10×
// faster), confirm the hit is visible in /metrics, then SIGTERM the
// daemon and require a clean drain (exit 0, "drained cleanly").
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve smoke builds and runs the daemon binary")
	}

	bin := filepath.Join(t.TempDir(), "bisramgend")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	var stderr bytes.Buffer
	daemon := exec.Command(bin, "-addr", addr, "-workers", "2", "-drain-timeout", "20s")
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill() //nolint:errcheck // backstop for early t.Fatal paths

	base := "http://" + addr
	waitHealthy(t, base, exited)

	const req = `{"words":256,"bpw":8,"bpc":4,"spares":4}`
	first := postCompile(t, base, req)
	if first.Cached {
		t.Fatal("first compile reported cached=true")
	}
	second := postCompile(t, base, req)
	if !second.Cached {
		t.Fatal("second identical compile was not served from cache")
	}
	if first.Key == "" || first.Key != second.Key {
		t.Fatalf("content addresses disagree: %q vs %q", first.Key, second.Key)
	}
	// The acceptance bar: a cache hit collapses to lookup cost. The
	// compile takes >100ms on any hardware; the hit is a map lookup.
	if second.ElapsedMs*10 > first.ElapsedMs {
		t.Errorf("cache hit not ≥10× faster: first %.3fms, second %.3fms", first.ElapsedMs, second.ElapsedMs)
	}

	var metrics struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON(t, base+"/metrics", &metrics)
	if metrics.Cache.Hits < 1 {
		t.Errorf("metrics cache.hits = %d, want >= 1 (misses %d)", metrics.Cache.Hits, metrics.Cache.Misses)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("stderr missing clean-drain line:\n%s", stderr.String())
	}
}

// freeAddr reserves an ephemeral localhost port and releases it for
// the daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until the daemon answers 200, failing
// fast if the process dies first.
func waitHealthy(t *testing.T, base string, exited <-chan error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			t.Fatalf("daemon exited before becoming healthy: %v", err)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

type smokeResponse struct {
	Key       string  `json:"key"`
	State     string  `json:"state"`
	Cached    bool    `json:"cached"`
	CacheTier string  `json:"cache_tier"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func postCompile(t *testing.T, base, body string) smokeResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Responses arrive in the uniform /v1 envelope with the compile
	// payload under "job".
	var env struct {
		Job   smokeResponse   `json:"job"`
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compile: status %d (error %s)", resp.StatusCode, env.Error)
	}
	if env.Job.State != "done" {
		t.Fatalf("unexpected terminal state %q", env.Job.State)
	}
	return env.Job
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
