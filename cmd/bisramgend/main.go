// Command bisramgend is the BISRAMGEN compile service: an HTTP/JSON
// daemon that accepts compile requests (circuit parameters + optional
// inline technology deck + march/test specification), runs them on a
// bounded worker pool with per-job deadlines wired into the compile
// pipeline's context-bounded kernels, and serves results from a
// content-addressed cache keyed by the canonical SHA-256 of the
// fully-validated inputs. Identical requests in flight are
// deduplicated (singleflight); identical requests over time are cache
// hits.
//
// Example:
//
//	bisramgend -addr :8047 -workers 4 -cache-mb 256 -deadline 2m
//	curl -s localhost:8047/v1/compile -d '{"words":4096,"bpw":32,"bpc":8,"spares":4}'
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains queued and
// running jobs (bounded by -drain-timeout), and exits 0 on a clean
// drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	var (
		addr         = flag.String("addr", ":8047", "listen address")
		workers      = flag.Int("workers", runtime.NumCPU(), "compile worker pool size")
		queueDepth   = flag.Int("queue", 256, "max queued (not yet running) jobs; overload returns 429")
		cacheMB      = flag.Int64("cache-mb", 256, "artifact cache budget in MiB (0 disables caching)")
		deadline     = flag.Duration("deadline", 2*time.Minute, "per-job compile deadline")
		syncWait     = flag.Duration("sync-wait", 0, "max synchronous POST wait before returning a job handle (0 = wait for the job deadline)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		quiet        = flag.Bool("quiet", false, "suppress per-request log lines")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowCompile  = flag.Duration("slow-compile", 0, "dump the span tree of any compile slower than this (0 = off)")
		storeDir     = flag.String("store-dir", "", "disk artifact store directory (empty disables persistence; restarts over the same directory stay warm)")
		storeMB      = flag.Int64("store-mb", 0, "disk store byte budget in MiB (0 = unbounded; LRU GC above the budget)")
		compilePar   = flag.Int("compile-par", runtime.GOMAXPROCS(0), "per-compile goroutine fan-out for requests that don't name one (output is byte-identical at any value; 1 = serial)")
		journalDir   = flag.String("sweep-journal-dir", "", "sweep write-ahead journal directory; restarts resume in-flight sweeps (default <store-dir>/sweeps, empty store-dir disables)")
		chaosSpec    = flag.String("chaos-spec", "", "TESTING ONLY: fault-injection spec, inline JSON or a file path; enables deterministic chaos drills")
		debugStacks  = flag.Bool("debug-stacks", false, "mount GET /v1/debug/stacks (full goroutine dump; also mounted by -pprof)")
		peersList    = flag.String("peers", "", "comma-separated base URLs of every fleet member (including this one); enables federation: ring-peer artifact fetch on store miss and shard identity in /healthz and /metrics")
		selfURL      = flag.String("self", "", "this daemon's own base URL as it appears in -peers (required with -peers)")
		gatewayURL   = flag.String("gateway", "", "advertised gateway base URL, reported in /healthz (informational)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "peer health probe interval when -peers is set")
		sseHeartbeat = flag.Duration("sse-heartbeat", 0, "keep-alive cadence of GET /v1/sweeps/{id}/events (0 = built-in default)")
	)
	flag.Parse()

	var inj *chaos.Injector
	if *chaosSpec != "" {
		var err error
		if strings.HasPrefix(strings.TrimSpace(*chaosSpec), "{") {
			inj, err = chaos.Parse([]byte(*chaosSpec))
		} else {
			inj, err = chaos.Load(*chaosSpec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisramgend: chaos spec: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bisramgend: CHAOS INJECTION ENABLED — not for production use")
	}

	// One shared telemetry registry: the queue's wait histograms and the
	// server's stage/cache/http instruments land in the same /metrics
	// exposition.
	reg := obs.NewRegistry()
	q := jobs.New(jobs.Config{
		Workers:  *workers,
		Capacity: *queueDepth,
		Deadline: *deadline,
		Registry: reg,
		Chaos:    inj,
	})
	c := cache.New(*cacheMB << 20)
	c.SetChaos(inj)
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: *storeDir, BudgetBytes: *storeMB << 20, Chaos: inj})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisramgend: opening store %s: %v\n", *storeDir, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bisramgend: disk store %s warm with %d objects\n",
			*storeDir, st.Stats().ScannedAtStartup)
	}
	var journal *sweep.Journal
	if jd := *journalDir; jd != "" || *storeDir != "" {
		if jd == "" {
			jd = filepath.Join(*storeDir, "sweeps")
		}
		var err error
		journal, err = sweep.OpenJournal(jd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisramgend: opening sweep journal %s: %v\n", jd, err)
			os.Exit(1)
		}
	}
	// Federation: build the fleet view and let the store pull missing
	// objects off ring peers before recompiling.
	var clusterView server.ClusterInfo
	if *peersList != "" {
		members := strings.Split(*peersList, ",")
		for i := range members {
			members[i] = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(members[i]), "/"))
		}
		self := strings.TrimSuffix(strings.TrimSpace(*selfURL), "/")
		ring, err := cluster.NewRing(members, cluster.DefaultVNodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisramgend: -peers: %v\n", err)
			os.Exit(1)
		}
		found := false
		for _, m := range ring.Members() {
			if m == self {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bisramgend: -self %q is not one of -peers %v\n", self, ring.Members())
			os.Exit(1)
		}
		tab := cluster.NewTable(ring)
		pc := cluster.NewPeers(tab, self)
		if st != nil {
			st.SetPeerFetch(pc.FetchObject)
		}
		stopProbing := tab.StartProbing(*probeEvery)
		defer stopProbing()
		clusterView = cluster.View{SelfURL: self, GatewayURL: *gatewayURL, Table: tab}
		fmt.Fprintf(os.Stderr, "bisramgend: federated as %s in a %d-member ring\n", self, tab.PeersTotal())
	}
	var logW = os.Stderr
	srv := server.New(server.Config{
		Queue:         q,
		Cache:         c,
		Store:         st,
		LogWriter:     logWriter(*quiet, logW),
		SyncWait:      *syncWait,
		Metrics:       reg,
		EnablePprof:   *enablePprof,
		EnableStacks:  *debugStacks || *enablePprof,
		SlowCompile:   *slowCompile,
		SlowLogWriter: os.Stderr,
		SweepJournal:  journal,
		Chaos:         inj,
		Cluster:       clusterView,
		SSEHeartbeat:  *sseHeartbeat,

		CompileParallelism: *compilePar,
	})
	if journal != nil {
		if n, err := srv.ResumeSweeps(); err != nil {
			fmt.Fprintf(os.Stderr, "bisramgend: sweep resume: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "bisramgend: resumed %d interrupted sweep(s) from %s\n", n, journal.Dir())
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until a termination signal arrives.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "bisramgend: listening on %s (%d workers, %d MiB cache, %v deadline)\n",
			*addr, *workers, *cacheMB, *deadline)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listener failed before any signal (port in use, etc.).
		fmt.Fprintf(os.Stderr, "bisramgend: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "bisramgend: signal received; draining (budget %v)\n", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	// Stop accepting connections and finish in-flight HTTP exchanges,
	// then drain the compile queue.
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := q.Shutdown(drainCtx)
	<-errCh // join the serve goroutine (returns ErrServerClosed)

	switch {
	case drainErr != nil:
		fmt.Fprintf(os.Stderr, "bisramgend: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	case shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed):
		fmt.Fprintf(os.Stderr, "bisramgend: http shutdown: %v\n", shutdownErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bisramgend: drained cleanly")
}

// logWriter selects the request-log destination.
func logWriter(quiet bool, w *os.File) *os.File {
	if quiet {
		return nil
	}
	return w
}
