package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// syncBuf is a bytes.Buffer safe to read while the daemon's stderr
// copier is still writing (the chaos drills inspect logs of a live
// process).
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemonProc wraps one running daemon generation for the multi-restart
// smoke tests.
type daemonProc struct {
	cmd    *exec.Cmd
	stderr *syncBuf
	base   string
	exited chan error
}

// startDaemon boots the built binary with extra flags and waits for
// /healthz.
func startDaemon(t *testing.T, bin string, extra ...string) *daemonProc {
	t.Helper()
	addr := freeAddr(t)
	args := append([]string{"-addr", addr, "-workers", "2", "-drain-timeout", "20s", "-quiet"}, extra...)
	var stderr syncBuf
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &daemonProc{cmd: cmd, stderr: &stderr, base: "http://" + addr, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()
	t.Cleanup(func() { cmd.Process.Kill() }) //nolint:errcheck // backstop for early t.Fatal paths
	waitHealthy(t, d.base, d.exited)
	return d
}

// stop SIGTERMs the daemon and requires a clean exit.
func (d *daemonProc) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-d.exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v\nstderr:\n%s", err, d.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\nstderr:\n%s", d.stderr.String())
	}
}

// buildDaemon compiles the real binary once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bisramgend")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// storeMetrics is the store member of the /metrics JSON document.
type storeMetrics struct {
	Store struct {
		Hits             uint64 `json:"hits"`
		Puts             uint64 `json:"puts"`
		Corrupt          uint64 `json:"corrupt"`
		Entries          int    `json:"entries"`
		ScannedAtStartup int    `json:"scanned_at_startup"`
	} `json:"store"`
	Queue struct {
		Completed uint64 `json:"completed"`
	} `json:"queue"`
}

// TestStoreRestartSmoke is the restart-warmness check behind `make
// sweep-smoke`: a daemon run over a -store-dir persists its compiles,
// a restarted daemon over the same directory serves them from disk
// (cache_tier "hit-disk", >= 10x faster), and a truncated store file
// is quarantined — recompiled, never served corrupt.
func TestStoreRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("restart smoke builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	// A real-sized array: the cold compile costs hundreds of
	// milliseconds, so the >=10x warm-restart bar measures the store,
	// not kernel startup noise.
	const req = `{"words":4096,"bpw":32,"bpc":8,"spares":4}`

	// Generation 1: cold compile, persisted on the way out.
	d1 := startDaemon(t, bin, "-store-dir", dir)
	first := postCompile(t, d1.base, req)
	if first.Cached {
		t.Fatal("generation 1 first compile reported cached=true")
	}
	var m1 storeMetrics
	getJSON(t, d1.base+"/metrics", &m1)
	if m1.Store.Puts < 1 || m1.Store.Entries < 1 {
		t.Fatalf("store not populated after compile: %+v", m1.Store)
	}
	d1.stop(t)
	obj := filepath.Join(dir, "objects", first.Key+".entry")
	if _, err := os.Stat(obj); err != nil {
		t.Fatalf("persisted object missing after drain: %v", err)
	}

	// Generation 2: a fresh process over the same directory must be
	// warm — the same request is a disk hit, >= 10x faster than the
	// cold compile, and the store counters say so.
	d2 := startDaemon(t, bin, "-store-dir", dir)
	second := postCompile(t, d2.base, req)
	if !second.Cached || second.CacheTier != "hit-disk" {
		t.Fatalf("restart not warm: cached=%v tier=%q", second.Cached, second.CacheTier)
	}
	if second.Key != first.Key {
		t.Fatalf("content keys disagree across restart: %q vs %q", first.Key, second.Key)
	}
	if second.ElapsedMs*10 > first.ElapsedMs {
		t.Errorf("disk hit not >=10x faster: cold %.3fms, warm %.3fms", first.ElapsedMs, second.ElapsedMs)
	}
	var m2 storeMetrics
	getJSON(t, d2.base+"/metrics", &m2)
	if m2.Store.ScannedAtStartup != 1 || m2.Store.Hits < 1 {
		t.Errorf("store counters after restart: %+v (want scanned 1, hits >= 1)", m2.Store)
	}
	// A repeat inside the same process is a memory hit (promotion).
	third := postCompile(t, d2.base, req)
	if !third.Cached || third.CacheTier != "hit" {
		t.Errorf("promoted entry not a memory hit: cached=%v tier=%q", third.Cached, third.CacheTier)
	}
	d2.stop(t)

	// Generation 3: corrupt the object on disk. The daemon must
	// quarantine it and recompile rather than serve damaged bytes.
	b, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(obj, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	d3 := startDaemon(t, bin, "-store-dir", dir)
	fourth := postCompile(t, d3.base, req)
	if fourth.Cached {
		t.Fatal("corrupted object served as a cache hit")
	}
	if fourth.Key != first.Key {
		t.Fatalf("recompile minted a different key: %q vs %q", fourth.Key, first.Key)
	}
	var m3 storeMetrics
	getJSON(t, d3.base+"/metrics", &m3)
	if m3.Store.Corrupt < 1 {
		t.Errorf("corrupt counter not incremented: %+v", m3.Store)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "quarantine", first.Key+".*"))
	if err != nil || len(quarantined) == 0 {
		t.Errorf("no quarantined file for %s (err %v)", first.Key, err)
	}
	if _, err := os.Stat(obj); err != nil {
		t.Errorf("recompile did not re-persist the object: %v", err)
	}
	d3.stop(t)
}

// TestSweepSmoke drives the batch API end to end against the real
// daemon: a spares x defects sweep expands, dedups and completes; an
// identical repeat sweep is served entirely from cache with zero new
// compiles; and the experiments growth-factor tables built from
// service-fetched factors are byte-identical to locally compiled ones.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, "-store-dir", t.TempDir())
	c := sweep.NewClient(d.base)

	spec := sweep.Spec{
		Base: experiments.Fig45Base(),
		Axes: sweep.Axes{Spares: []int{0, 4, 8}, Defects: []float64{0, 10, 20}},
	}
	st, err := c.CreateSweep(spec)
	if err != nil {
		t.Fatalf("create sweep: %v", err)
	}
	if st.Total != 9 || st.UniqueCompiles != 3 {
		t.Fatalf("expansion: total %d unique %d, want 9/3", st.Total, st.UniqueCompiles)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err = c.WaitSweep(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait sweep: %v", err)
	}
	if st.State != "done" || st.Failed != 0 {
		t.Fatalf("sweep terminal state %q (failed %d)", st.State, st.Failed)
	}
	res, err := c.SweepResults(st.ID)
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	if !res.Complete || len(res.Rows) != 9 {
		t.Fatalf("results incomplete: complete=%v rows=%d", res.Complete, len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Spares > 0 && row.Defects > 0 && row.YieldBISR < row.YieldNoRepair {
			t.Errorf("row %d: BISR yield %.4f below no-repair %.4f", row.Index, row.YieldBISR, row.YieldNoRepair)
		}
	}

	// An identical repeat sweep must be pure cache: every point cached,
	// no new queue completions.
	var before storeMetrics
	getJSON(t, d.base+"/metrics", &before)
	st2, err := c.CreateSweep(spec)
	if err != nil {
		t.Fatalf("repeat sweep: %v", err)
	}
	st2, err = c.WaitSweep(ctx, st2.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait repeat sweep: %v", err)
	}
	if st2.State != "done" || st2.Cached != st2.Total {
		t.Fatalf("repeat sweep not fully cached: state %q cached %d/%d", st2.State, st2.Cached, st2.Total)
	}
	var after storeMetrics
	getJSON(t, d.base+"/metrics", &after)
	if after.Queue.Completed != before.Queue.Completed {
		t.Errorf("repeat sweep ran %d compiles, want 0",
			after.Queue.Completed-before.Queue.Completed)
	}

	// The service path is a drop-in source for the paper's evaluation:
	// tables from service-fetched growth factors must be byte-identical
	// to locally compiled ones.
	gfSvc, err := experiments.GrowthFactorsService(d.base, 2*time.Minute)
	if err != nil {
		t.Fatalf("growth factors via service: %v", err)
	}
	gfLocal, err := experiments.GrowthFactors()
	if err != nil {
		t.Fatalf("growth factors locally: %v", err)
	}
	for _, s := range []int{0, 4, 8, 16} {
		if gfSvc[s] != gfLocal[s] {
			t.Errorf("growth factor %d spares: service %v local %v", s, gfSvc[s], gfLocal[s])
		}
	}
	type build func(map[int]float64) (string, error)
	builders := map[string]build{
		"FIG4": func(gf map[int]float64) (string, error) {
			tb, err := experiments.Fig4With(gf, 40, 2)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		},
		"TAB2": func(gf map[int]float64) (string, error) {
			tb, err := experiments.Table2With(gf)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		},
		"TAB3": func(gf map[int]float64) (string, error) {
			tb, err := experiments.Table3With(gf)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		},
		"WAFER": func(gf map[int]float64) (string, error) {
			tb, _, err := experiments.WaferStudyWith(gf)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		},
	}
	for name, f := range builders {
		svc, err := f(gfSvc)
		if err != nil {
			t.Fatalf("%s from service factors: %v", name, err)
		}
		local, err := f(gfLocal)
		if err != nil {
			t.Fatalf("%s from local factors: %v", name, err)
		}
		if svc != local {
			t.Errorf("%s differs between service and local growth factors:\nservice:\n%s\nlocal:\n%s",
				name, svc, local)
		}
	}
	d.stop(t)
}
