// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index) and
// writes text, CSV and SVG artefacts.
//
// The growth-factor-driven experiments (FIG4, TAB2, TAB3, WAFER)
// depend on compiled layouts only through the spare-count →
// growth-factor map, so they can source it either from local compiles
// (the default, and what -local forces) or from a running bisramgend
// instance via the sweep API (-server). Compiles are deterministic,
// so both paths emit byte-identical artefacts — the smoke suite
// asserts exactly that.
//
// Example:
//
//	experiments -out results                      # everything, local compiles
//	experiments -only FIG4,TAB1                   # a subset
//	experiments -server http://127.0.0.1:8047     # growth factors via the service
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

type runner struct {
	id  string
	run func(outDir string) (*experiments.Table, error)
}

func main() {
	var (
		outDir    = flag.String("out", "results", "output directory")
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		trials    = flag.Int("trials", 40, "Monte-Carlo trials for MC/BASE experiments")
		mcSamples = flag.Int("mc-samples", 2000, "cell samples per sigma for the STATY statistical-yield experiment")
		server    = flag.String("server", "", "bisramgend base URL; growth-factor experiments run as sweep-API clients")
		local     = flag.Bool("local", false, "force local compiles even when -server is set")
		svcWait   = flag.Duration("server-timeout", 2*time.Minute, "sweep completion budget when -server is set")
		progress  = flag.Bool("progress", false, "with -server: stream live per-point sweep progress (SSE) instead of silent polling")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	// growthFactors fetches the Fig. 4 spare-count → growth-factor map
	// once and shares it across every runner that needs it: one sweep
	// (or one compile trio) feeds FIG4, TAB2, TAB3 and WAFER.
	var gfCache map[int]float64
	growthFactors := func() (map[int]float64, error) {
		if gfCache != nil {
			return gfCache, nil
		}
		var (
			gf  map[int]float64
			err error
		)
		if *server != "" && !*local {
			fmt.Printf("fetching growth factors from %s...\n", *server)
			if *progress {
				gf, err = experiments.GrowthFactorsServiceProgress(*server, *svcWait, printSweepEvent)
			} else {
				gf, err = experiments.GrowthFactorsService(*server, *svcWait)
			}
		} else {
			gf, err = experiments.GrowthFactors()
		}
		if err != nil {
			return nil, err
		}
		gfCache = gf
		return gf, nil
	}
	withGF := func(f func(map[int]float64) (*experiments.Table, error)) func(string) (*experiments.Table, error) {
		return func(string) (*experiments.Table, error) {
			gf, err := growthFactors()
			if err != nil {
				return nil, err
			}
			return f(gf)
		}
	}

	runners := []runner{
		{"FIG4", withGF(func(gf map[int]float64) (*experiments.Table, error) { return experiments.Fig4With(gf, 50, 2) })},
		{"FIG5", func(string) (*experiments.Table, error) { return experiments.Fig5(30, 1) }},
		{"TAB1", func(string) (*experiments.Table, error) { return experiments.Table1() }},
		{"TAB2", withGF(experiments.Table2With)},
		{"TAB3", withGF(experiments.Table3With)},
		{"FIG6", func(dir string) (*experiments.Table, error) { return layout(dir, "fig6", experiments.Fig6) }},
		{"FIG7", func(dir string) (*experiments.Table, error) { return layout(dir, "fig7", experiments.Fig7) }},
		{"TLBD", func(string) (*experiments.Table, error) { return experiments.TLBDelay() }},
		{"CORNERS", func(string) (*experiments.Table, error) { return experiments.Corners() }},
		{"CTRL", func(string) (*experiments.Table, error) { return experiments.Controller() }},
		{"COV", func(string) (*experiments.Table, error) { return experiments.Coverage() }},
		{"BASE", func(string) (*experiments.Table, error) { return experiments.RepairComparison(*trials, 42) }},
		{"ABL-YIELD", func(string) (*experiments.Table, error) { return experiments.YieldAblation() }},
		{"ABL-COST", func(string) (*experiments.Table, error) { return experiments.CostSensitivity() }},
		{"CAA", func(string) (*experiments.Table, error) { return experiments.CriticalAreaStudy() }},
		{"ABL-TEST", func(string) (*experiments.Table, error) { return experiments.TestLengthTradeoff() }},
		{"MC", func(string) (*experiments.Table, error) { return experiments.MonteCarloYield(*trials, 7) }},
		{"STATY", func(string) (*experiments.Table, error) { return experiments.StatisticalYield(*mcSamples, 7) }},
		{"GATE", func(string) (*experiments.Table, error) { return experiments.GateLevel(6, 3) }},
		{"CLUSTER", func(string) (*experiments.Table, error) { return experiments.Clustering(*trials, 5) }},
		{"WAFER", func(dir string) (*experiments.Table, error) {
			gf, err := growthFactors()
			if err != nil {
				return nil, err
			}
			tb, art, err := experiments.WaferStudyWith(gf)
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(filepath.Join(dir, "wafer_map.txt"), []byte(art), 0o644); err != nil {
				return nil, err
			}
			return tb, nil
		}},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		fmt.Printf("running %s...\n", r.id)
		tb, err := r.run(*outDir)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.id, err))
		}
		fmt.Println(tb.String())
		base := filepath.Join(*outDir, strings.ToLower(r.id))
		if err := os.WriteFile(base+".txt", []byte(tb.String()), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(base+".csv", []byte(tb.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("artefacts written to %s/\n", *outDir)
}

func layout(dir, name string, f func() (*experiments.LayoutResult, error)) (*experiments.Table, error) {
	res, err := f()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".svg"), []byte(res.SVG), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, name+"_ascii.txt"), []byte(res.ASCII), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".gds"), res.GDS, 0o644); err != nil {
		return nil, err
	}
	return res.Table, nil
}

// printSweepEvent renders one SSE frame from the watched sweep as a
// progress line: per-point terminal transitions and summary frames.
func printSweepEvent(ev sweep.Event) {
	switch {
	case ev.Point != nil:
		line := fmt.Sprintf("  point %d [%s] %s", ev.Point.Index, shortKey(ev.Point.Key), ev.Point.Status)
		if ev.Point.Error != "" {
			line += ": " + ev.Point.Error
		}
		fmt.Println(line)
	case ev.Summary != nil:
		fmt.Printf("  sweep %s: %d/%d done (%d cached, %d failed)\n",
			ev.Summary.State, ev.Summary.Done+ev.Summary.Failed, ev.Summary.Total,
			ev.Summary.Cached, ev.Summary.Failed)
	}
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
