// Command bisramgate is the BISRAMGEN federation gateway: one HTTP
// surface speaking the daemon's /v1 contract in front of a fleet of
// bisramgend shards. Compile submissions and key-addressed reads
// route to the content key's consistent-hash owner (failing over to
// ring successors while a shard is down), job reads follow the shard
// that accepted the job, and sweeps fan their points across the fleet
// — merged into a results document byte-identical to a single
// daemon's, because every shard derives the same bytes from the same
// canonical key.
//
// Example:
//
//	bisramgate -addr :8040 -shards http://localhost:8047,http://localhost:8048,http://localhost:8049
//	curl -s localhost:8040/v1/compile -d '{"words":4096,"bpw":32,"bpc":8,"spares":4}'
//
// On SIGINT/SIGTERM the gateway stops accepting work, finishes
// in-flight exchanges and sweep routing (bounded by -drain-timeout),
// and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8040", "listen address")
		shards       = flag.String("shards", "", "comma-separated base URLs of the shard fleet (required)")
		routeWorkers = flag.Int("route-workers", 4*runtime.NumCPU(), "sweep fan-out concurrency (router jobs proxying point compiles)")
		queueDepth   = flag.Int("queue", 1024, "max queued router jobs; overload returns 429")
		deadline     = flag.Duration("deadline", 5*time.Minute, "per-point routing deadline (shard compile + polling)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "shard health probe interval")
		sweepMax     = flag.Int("sweep-max-points", 0, "max points in one sweep's cross product (0 = sweep default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		chaosSpec    = flag.String("chaos-spec", "", "TESTING ONLY: fault-injection spec, inline JSON or a file path; enables deterministic chaos drills")
		sseHeartbeat = flag.Duration("sse-heartbeat", 0, "keep-alive cadence of GET /v1/sweeps/{id}/events (0 = built-in default)")
		scrapeWait   = flag.Duration("fleet-scrape-timeout", 0, "per-peer timeout of a GET /metrics?scope=fleet scrape (0 = built-in 2s)")
	)
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "bisramgate: -shards is required")
		os.Exit(1)
	}
	members := strings.Split(*shards, ",")
	for i := range members {
		members[i] = strings.TrimSuffix(strings.TrimSpace(members[i]), "/")
	}
	ring, err := cluster.NewRing(members, cluster.DefaultVNodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bisramgate: -shards: %v\n", err)
		os.Exit(1)
	}

	var inj *chaos.Injector
	if *chaosSpec != "" {
		if strings.HasPrefix(strings.TrimSpace(*chaosSpec), "{") {
			inj, err = chaos.Parse([]byte(*chaosSpec))
		} else {
			inj, err = chaos.Load(*chaosSpec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisramgate: chaos spec: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bisramgate: CHAOS INJECTION ENABLED — not for production use")
	}

	reg := obs.NewRegistry()
	tab := cluster.NewTable(ring)
	q := jobs.New(jobs.Config{
		Workers:  *routeWorkers,
		Capacity: *queueDepth,
		Deadline: *deadline,
		Registry: reg,
	})
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Table:              tab,
		Queue:              q,
		Registry:           reg,
		Chaos:              inj,
		SweepMaxPoints:     *sweepMax,
		SSEHeartbeat:       *sseHeartbeat,
		FleetScrapeTimeout: *scrapeWait,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bisramgate: %v\n", err)
		os.Exit(1)
	}
	stopProbing := tab.StartProbing(*probeEvery)
	defer stopProbing()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "bisramgate: listening on %s in front of %d shard(s) (%d up)\n",
			*addr, tab.PeersTotal(), tab.PeersUp())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "bisramgate: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "bisramgate: signal received; draining (budget %v)\n", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := q.Shutdown(drainCtx)
	<-errCh

	switch {
	case drainErr != nil:
		fmt.Fprintf(os.Stderr, "bisramgate: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	case shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed):
		fmt.Fprintf(os.Stderr, "bisramgate: http shutdown: %v\n", shutdownErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bisramgate: drained cleanly")
}
