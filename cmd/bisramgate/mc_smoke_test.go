package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const (
	// mcSweep: one compile group (the MC knobs are analysis-only and
	// excluded from the content key) fanned into two seeded
	// statistical-yield points. Small sample counts keep the drill
	// quick; determinism does not depend on sample size.
	mcSweep = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4,"mc_seed":9},"axes":{"mc_samples":[48],"mc_sigma":[0.15,0.2]}}`
	// mcKillSweep: four unique compiles (the words axis changes the
	// key) each carrying an MC verdict, so a one-worker stalled daemon
	// is reliably mid-sweep when it is killed.
	mcKillSweep  = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4,"mc_seed":9},"axes":{"words":[512,1024,2048,4096],"mc_samples":[48],"mc_sigma":[0.2]}}`
	mcKillUnique = 4
)

// TestMCSmoke is the statistical-yield drill behind `make mc-smoke`:
// the Monte-Carlo yield engine exercised end to end through the real
// binaries.
//
//  1. Determinism: a seeded MC sweep submitted twice to one daemon
//     returns results documents identical up to the sweep ID and the
//     row cached flags (the repeat is a warm run by construction).
//  2. Federation: the same sweep through a bisramgate gateway over two
//     federated shards matches the standalone daemon's first document
//     byte for byte — both are first sweeps on cold fleets, so even
//     the sweep ID and cached flags agree.
//  3. Crash/resume: kill -9 a stalled daemon mid-MC-sweep; a restart
//     over the same store resumes from the journal, completes under
//     the original sweep ID, and every row's MC block matches an
//     undisturbed run.
func TestMCSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mc smoke builds and runs daemons and a gateway")
	}

	dir := t.TempDir()
	shardBin := filepath.Join(dir, "bisramgend")
	gateBin := filepath.Join(dir, "bisramgate")
	for bin, pkg := range map[string]string{shardBin: "repro/cmd/bisramgend", gateBin: "repro/cmd/bisramgate"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// 1. One standalone daemon: the same seeded sweep twice.
	refAddr := freeAddr(t)
	ref := startProc(t, shardBin,
		"-addr", refAddr, "-workers", "2", "-quiet",
		"-store-dir", filepath.Join(dir, "ref-store"))
	refBase := "http://" + refAddr
	waitHealthy(t, refBase, ref.exited)

	first := runSweep(t, refBase, mcSweep, nil)
	second := runSweep(t, refBase, mcSweep, nil)
	assertMCRows(t, first, 2)
	if !bytes.Equal(stripRunIdentity(t, first), stripRunIdentity(t, second)) {
		t.Fatalf("seeded MC sweep not deterministic across submissions:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	// The reference for the crash drill, measured while the daemon is
	// undisturbed. The words geometries are fresh, so every row is cold.
	refKill := runSweep(t, refBase, mcKillSweep, nil)
	assertMCRows(t, refKill, mcKillUnique)

	// 2. A gateway over two federated shards: the first sweep through
	// the cold cluster must reproduce the daemon's first document byte
	// for byte (same sweep ID, same cold cached flags, same MC rows).
	addrs := []string{freeAddr(t), freeAddr(t)}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	for i, a := range addrs {
		startProc(t, shardBin,
			"-addr", a, "-workers", "2", "-quiet",
			"-store-dir", filepath.Join(dir, "store-"+a),
			"-peers", peers, "-self", urls[i], "-probe-interval", "500ms")
	}
	for _, u := range urls {
		waitHealthy(t, u, nil)
	}
	gwAddr := freeAddr(t)
	gw := startProc(t, gateBin,
		"-addr", gwAddr, "-shards", peers, "-probe-interval", "300ms")
	gwBase := "http://" + gwAddr
	waitHealthy(t, gwBase, gw.exited)

	gwFirst := runSweep(t, gwBase, mcSweep, nil)
	if !bytes.Equal(first, gwFirst) {
		t.Fatalf("gateway MC sweep diverges from the single daemon's:\n--- single ---\n%s\n--- cluster ---\n%s", first, gwFirst)
	}

	// 3. Crash/resume. One worker and an injected 400 ms stage stall
	// per compile keep the victim reliably mid-sweep; SIGKILL, then a
	// restart over the same store and address must announce the resume
	// and finish the sweep under its original ID.
	vdir := filepath.Join(dir, "victim-store")
	vAddr := freeAddr(t)
	d1 := startProc(t, shardBin,
		"-addr", vAddr, "-workers", "1", "-quiet", "-store-dir", vdir,
		"-chaos-spec", `{"rules":[{"point":"compile.stage.floorplan","mode":"delay","delay_ms":400}]}`)
	vBase := "http://" + vAddr
	waitHealthy(t, vBase, d1.exited)

	id := createSweep(t, vBase, mcKillSweep)
	markerDir := filepath.Join(vdir, "sweeps", id+".done")
	deadline := time.Now().Add(60 * time.Second)
	for countMarkers(t, markerDir) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no group finished within 60s; cannot stage a mid-sweep kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := countMarkers(t, markerDir); n >= mcKillUnique {
		t.Fatalf("sweep finished before the kill (%d markers); stall too short", n)
	}
	d1.kill(t)

	d2 := startProc(t, shardBin, "-addr", vAddr, "-quiet", "-store-dir", vdir)
	waitHealthy(t, vBase, d2.exited)
	resumed := waitSweepByID(t, vBase, id)
	assertMCRows(t, resumed, mcKillUnique)
	// Resume replays journaled groups through the store, so the cached
	// flags differ from the cold reference by construction; every
	// measured column — the MC verdicts included — must be identical.
	if !bytes.Equal(stripRunIdentity(t, refKill), stripRunIdentity(t, resumed)) {
		t.Fatalf("rows drifted across crash/resume:\n--- reference ---\n%s\n--- resumed ---\n%s", refKill, resumed)
	}

	// Drain d2 before reading its stderr: the buffer is written from
	// the process-wait goroutine, so the read is only safe after Wait.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-d2.exited
	if !strings.Contains(d2.stderr.String(), "resumed 1 interrupted sweep") {
		t.Fatalf("restart did not announce a resume\nstderr:\n%s", d2.stderr.String())
	}
}

// assertMCRows requires every row of a results document to carry a
// complete seeded MC block.
func assertMCRows(t *testing.T, raw []byte, rows int) {
	t.Helper()
	var env struct {
		Data struct {
			Rows []struct {
				Index int `json:"index"`
				MC    *struct {
					Samples    int     `json:"samples"`
					Seed       int64   `json:"seed"`
					FailProb   float64 `json:"fail_prob"`
					SigmaLevel float64 `json:"sigma_level"`
					YieldCell  float64 `json:"yield_cell"`
					YieldArray float64 `json:"yield_array"`
				} `json:"mc"`
			} `json:"rows"`
		} `json:"data"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("results document: %v", err)
	}
	if len(env.Data.Rows) != rows {
		t.Fatalf("results rows = %d, want %d", len(env.Data.Rows), rows)
	}
	for _, r := range env.Data.Rows {
		if r.MC == nil {
			t.Fatalf("row %d has no mc block:\n%s", r.Index, raw)
		}
		if r.MC.Samples != 48 || r.MC.Seed != 9 {
			t.Fatalf("row %d mc identity drifted: %+v", r.Index, *r.MC)
		}
		if r.MC.YieldCell <= 0 || r.MC.YieldCell > 1 || r.MC.YieldArray < 0 || r.MC.YieldArray > 1 {
			t.Fatalf("row %d mc yields out of range: %+v", r.Index, *r.MC)
		}
	}
}

// stripRunIdentity removes the per-submission identity from a results
// document — the manager-sequential sweep_id and the per-row cached
// flags (a repeat or a resume is warm by construction) — and returns a
// canonical re-marshalling, so two runs of the same seeded sweep can
// be compared on their measured content alone.
func stripRunIdentity(t *testing.T, raw []byte) []byte {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("results document: %v", err)
	}
	doc, _ := env["data"].(map[string]any)
	if doc == nil {
		t.Fatalf("results document has no data envelope:\n%s", raw)
	}
	delete(doc, "sweep_id")
	rows, _ := doc["rows"].([]any)
	for _, r := range rows {
		if m, ok := r.(map[string]any); ok {
			delete(m, "cached")
		}
	}
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// createSweep submits a sweep and returns its ID without waiting.
func createSweep(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Sweep struct {
			ID string `json:"id"`
		} `json:"sweep"`
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep create %d (error %s)", resp.StatusCode, env.Error)
	}
	return env.Sweep.ID
}

// waitSweepByID polls an already-created sweep to completion and
// returns the verbatim results document.
func waitSweepByID(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		var env struct {
			Sweep struct {
				State string `json:"state"`
				Done  int    `json:"done"`
			} `json:"sweep"`
		}
		getJSON(t, base+"/v1/sweeps/"+id, &env)
		if env.Sweep.State == "done" {
			break
		}
		if env.Sweep.State == "failed" {
			t.Fatalf("sweep %s failed", id)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished (state %s, done %d)", id, env.Sweep.State, env.Sweep.Done)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return getRaw(t, base+"/v1/sweeps/"+id+"/results")
}

// countMarkers counts per-group done markers in a sweep's journal
// directory; zero (including "not created yet") means no group has
// finished.
func countMarkers(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	return len(ents)
}
