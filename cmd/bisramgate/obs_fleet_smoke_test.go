package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// TestObsFleetSmoke is the fleet-observability drill behind `make
// obs-fleet-smoke`: a gateway over two federated shards must produce
//
//  1. one merged Chrome trace for a routed compile, with spans from
//     both processes and the shard's compile spans parented under the
//     gateway's proxy.route span;
//  2. an SSE watcher that sees every sweep point exactly once and a
//     terminal summary consistent with the results document;
//  3. a fleet metrics scrape whose counters equal the sum of the
//     individual shard scrapes — and which still answers after one
//     shard is killed.
func TestObsFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("obs fleet smoke builds and runs two daemons and a gateway")
	}

	dir := t.TempDir()
	shardBin := filepath.Join(dir, "bisramgend")
	gateBin := filepath.Join(dir, "bisramgate")
	for bin, pkg := range map[string]string{shardBin: "repro/cmd/bisramgend", gateBin: "repro/cmd/bisramgate"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	addrs := []string{freeAddr(t), freeAddr(t)}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	shards := make([]*proc, len(addrs))
	for i, a := range addrs {
		shards[i] = startProc(t, shardBin,
			"-addr", a, "-workers", "2", "-quiet",
			"-store-dir", filepath.Join(dir, "store-"+a),
			"-peers", peers, "-self", urls[i], "-probe-interval", "500ms")
	}
	for _, u := range urls {
		waitHealthy(t, u, nil)
	}
	gwAddr := freeAddr(t)
	gw := startProc(t, gateBin,
		"-addr", gwAddr, "-shards", peers, "-probe-interval", "300ms")
	gwBase := "http://" + gwAddr
	waitHealthy(t, gwBase, gw.exited)

	// --- 1. Cross-node trace: one compile, one merged trace tree. ---
	job := postCompile(t, gwBase, smokeReq)
	if job.JobID == "" {
		t.Fatalf("routed compile returned no job id: %+v", job)
	}
	assertMergedTrace(t, gwBase, job.JobID)

	// --- 2. SSE progress: every point exactly once, summary vs results. ---
	watchSweepOverSSE(t, gwBase)

	// --- 3. Fleet scrape: counters sum across shards. ---
	fleet := parseProm(t, getRaw(t, gwBase+"/metrics?scope=fleet&format=prometheus"))
	var want float64
	perShard := make([]float64, len(urls))
	for i, u := range urls {
		perShard[i] = counterValue(t, parseProm(t, getRaw(t, u+"/metrics?format=prometheus")), "jobs_completed_total")
		want += perShard[i]
	}
	if want == 0 {
		t.Fatal("no shard completed any job; the sum check would be vacuous")
	}
	if got := counterValue(t, fleet, "jobs_completed_total"); got != want {
		t.Fatalf("fleet jobs_completed_total = %v, shard sum = %v", got, want)
	}
	// Gauges stay per node, tagged with the shard URL.
	prom := string(getRaw(t, gwBase+"/metrics?scope=fleet&format=prometheus"))
	for _, u := range urls {
		if !strings.Contains(prom, `node="`+u+`"`) {
			t.Fatalf("fleet exposition missing node label for %s:\n%s", u, prom)
		}
	}

	// --- Kill one shard: the scrape degrades, it does not die. ---
	// Ring placement depends on the run's random ports, so either shard
	// may have done all the work; kill the one that completed fewer
	// jobs so the survivor always has nonzero counters to assert on.
	victim := 1
	if perShard[1] > perShard[0] {
		victim = 0
	}
	shards[victim].kill(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var doc struct {
			Scope        string `json:"scope"`
			ScrapeErrors int    `json:"scrape_errors"`
		}
		getJSON(t, gwBase+"/metrics?scope=fleet", &doc)
		if doc.Scope != "fleet" {
			t.Fatalf("fleet scrape lost its shape: %+v", doc)
		}
		if doc.ScrapeErrors >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed shard never surfaced as a scrape error: %+v", doc)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The surviving shard's counters still merge.
	alive := parseProm(t, getRaw(t, gwBase+"/metrics?scope=fleet&format=prometheus"))
	survivor := want - perShard[victim]
	if got := counterValue(t, alive, "jobs_completed_total"); got <= 0 || got != survivor {
		t.Fatalf("post-kill fleet scrape lost the survivor's counters: got %v, want %v", got, survivor)
	}
}

// assertMergedTrace fetches the gateway's merged trace for a routed
// job and requires spans from both processes with the shard's root
// spans parented under the gateway's proxy.route span.
func assertMergedTrace(t *testing.T, gwBase, jobID string) {
	t.Helper()
	raw := getRaw(t, gwBase+"/debug/trace/"+jobID)
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, raw)
	}
	procs := map[int]string{}
	var gwPid int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid] = ev.Args["name"]
			if ev.Args["name"] == "gateway" {
				gwPid = ev.Pid
			}
		}
	}
	if len(procs) < 2 {
		t.Fatalf("merged trace names %d process(es), want >= 2: %v\n%s", len(procs), procs, raw)
	}
	if gwPid == 0 {
		t.Fatalf("merged trace has no gateway process: %v", procs)
	}
	var routeSpan string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "proxy.route" && ev.Pid == gwPid {
			routeSpan = ev.Args["span_id"]
		}
	}
	if routeSpan == "" {
		t.Fatalf("merged trace has no gateway proxy.route span:\n%s", raw)
	}
	spliced := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Pid != gwPid && ev.Args["parent_id"] == routeSpan {
			spliced++
		}
	}
	if spliced == 0 {
		t.Fatalf("no shard span parented under proxy.route (span %s):\n%s", routeSpan, raw)
	}
}

// watchSweepOverSSE creates a cluster sweep and follows its event
// stream live, then checks exactly-once point delivery and that the
// terminal summary counts agree with the results document.
func watchSweepOverSSE(t *testing.T, gwBase string) {
	t.Helper()
	resp, err := http.Post(gwBase+"/v1/sweeps", "application/json", strings.NewReader(smokeSweep))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Sweep struct {
			ID    string `json:"id"`
			Total int    `json:"total"`
		} `json:"sweep"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || env.Sweep.ID == "" {
		t.Fatalf("sweep create: status %d, id %q", resp.StatusCode, env.Sweep.ID)
	}

	terminals := map[int]int{}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	c := sweep.NewClient(gwBase)
	term, err := c.Watch(ctx, env.Sweep.ID, func(ev sweep.Event) {
		if ev.Seq > 0 && ev.Point != nil && ev.Point.Status != "started" {
			terminals[ev.Point.Index]++
		}
	})
	if err != nil {
		t.Fatalf("watching cluster sweep: %v", err)
	}
	if term.Summary == nil || !term.Summary.Terminal {
		t.Fatalf("watch ended without a terminal summary: %+v", term)
	}
	if len(terminals) != env.Sweep.Total {
		t.Fatalf("watcher saw %d points, sweep has %d", len(terminals), env.Sweep.Total)
	}
	for idx, n := range terminals {
		if n != 1 {
			t.Fatalf("point %d delivered %d terminal frames, want exactly 1", idx, n)
		}
	}

	// Terminal summary counts must agree with the results document
	// (rows cover successful points only; total and failed are global).
	var res struct {
		Data struct {
			Total  int `json:"total"`
			Failed int `json:"failed"`
			Rows   []struct {
				Cached bool `json:"cached"`
			} `json:"rows"`
			Complete bool `json:"complete"`
		} `json:"data"`
	}
	getJSON(t, gwBase+"/v1/sweeps/"+env.Sweep.ID+"/results", &res)
	if res.Data.Total != term.Summary.Total || res.Data.Failed != term.Summary.Failed {
		t.Fatalf("results total/failed = %d/%d, terminal summary = %d/%d",
			res.Data.Total, res.Data.Failed, term.Summary.Total, term.Summary.Failed)
	}
	if len(res.Data.Rows) != term.Summary.Done {
		t.Fatalf("results carry %d rows, terminal summary done %d", len(res.Data.Rows), term.Summary.Done)
	}
	cached := 0
	for _, row := range res.Data.Rows {
		if row.Cached {
			cached++
		}
	}
	if cached != term.Summary.Cached {
		t.Fatalf("summary cached = %d, results cached rows = %d", term.Summary.Cached, cached)
	}
	if res.Data.Complete != (term.Summary.State == "done") {
		t.Fatalf("summary state %q vs results complete %v", term.Summary.State, res.Data.Complete)
	}
}

// parseProm parses a Prometheus text exposition.
func parseProm(t *testing.T, raw []byte) []obs.PromFamily {
	t.Helper()
	fams, err := obs.ParsePrometheus(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, raw)
	}
	return fams
}

// counterValue sums a counter family's unlabeled samples.
func counterValue(t *testing.T, fams []obs.PromFamily, name string) float64 {
	t.Helper()
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		var v float64
		for _, s := range f.Samples {
			v += s.Value
		}
		return v
	}
	t.Fatalf("family %s missing (have %s)", name, fmt.Sprint(len(fams)))
	return 0
}
