package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const (
	smokeReq = `{"words":256,"bpw":8,"bpc":4,"spares":4}`
	// The fresh/repeat sweep: small so the cached-repeat check is quick.
	smokeSweep = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{"spares":[0,4],"defects":[0,5]}}`
	// The kill-drill sweep: 16 unique compiles (words × spares both
	// affect the key) so there is a "mid-sweep" to kill a shard in, on
	// geometries no earlier step compiled — both sides run every point
	// cold, keeping the row-level cached flags identical.
	killSweep = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{"words":[512,1024,2048,4096],"spares":[0,4,8,16]}}`
)

// TestClusterSmoke is the end-to-end federation check behind `make
// cluster-smoke`: build both binaries, start a gateway over three
// federated shards plus one standalone reference daemon, and require
//
//  1. a compile through the cluster returns the same key and
//     byte-identical artifact as the single daemon;
//  2. a fresh sweep through the cluster returns a results document
//     byte-identical to the single daemon's;
//  3. repeating the sweep against the warm cluster runs zero compiles
//     on any shard (the fleet's caches absorb it);
//  4. kill -9 of one shard mid-sweep still completes the sweep via
//     ring-successor failover, again with byte-identical rows.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke builds and runs four daemons and a gateway")
	}

	dir := t.TempDir()
	shardBin := filepath.Join(dir, "bisramgend")
	gateBin := filepath.Join(dir, "bisramgate")
	for bin, pkg := range map[string]string{shardBin: "repro/cmd/bisramgend", gateBin: "repro/cmd/bisramgate"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// One standalone daemon as the byte-identity reference.
	refAddr := freeAddr(t)
	ref := startProc(t, shardBin,
		"-addr", refAddr, "-workers", "2", "-quiet",
		"-store-dir", filepath.Join(dir, "ref-store"))
	refBase := "http://" + refAddr
	waitHealthy(t, refBase, ref.exited)

	// Three federated shards.
	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	shards := make([]*proc, len(addrs))
	for i, a := range addrs {
		shards[i] = startProc(t, shardBin,
			"-addr", a, "-workers", "2", "-quiet",
			"-store-dir", filepath.Join(dir, "store-"+a),
			"-peers", peers, "-self", urls[i], "-probe-interval", "500ms")
	}
	for _, u := range urls {
		waitHealthy(t, u, nil)
	}

	// The gateway in front of them.
	gwAddr := freeAddr(t)
	gw := startProc(t, gateBin,
		"-addr", gwAddr, "-shards", peers, "-probe-interval", "300ms")
	gwBase := "http://" + gwAddr
	waitHealthy(t, gwBase, gw.exited)

	// 1. Compile: same key, byte-identical artifact.
	refJob := postCompile(t, refBase, smokeReq)
	gwJob := postCompile(t, gwBase, smokeReq)
	if refJob.Key == "" || refJob.Key != gwJob.Key {
		t.Fatalf("content addresses disagree: single %q, cluster %q", refJob.Key, gwJob.Key)
	}
	refArt := getRaw(t, refBase+"/v1/jobs/"+refJob.JobID+"/artifact/datasheet.txt")
	gwArt := getRaw(t, gwBase+"/v1/jobs/"+gwJob.JobID+"/artifact/datasheet.txt")
	if !bytes.Equal(refArt, gwArt) {
		t.Fatalf("artifact bytes diverge: single %d bytes, cluster %d bytes", len(refArt), len(gwArt))
	}

	// 2. Fresh sweep: byte-identical results documents.
	refResults := runSweep(t, refBase, smokeSweep, nil)
	gwResults := runSweep(t, gwBase, smokeSweep, nil)
	if !bytes.Equal(refResults, gwResults) {
		t.Fatalf("sweep results diverge:\n--- single ---\n%s\n--- cluster ---\n%s", refResults, gwResults)
	}

	// 3. Repeat sweep: zero recompiles anywhere in the fleet, and the
	// warm rows (cached=true) still match the warm single daemon's.
	before := fleetCompletions(t, urls)
	refRepeat := runSweep(t, refBase, smokeSweep, nil)
	gwRepeat := runSweep(t, gwBase, smokeSweep, nil)
	if !bytes.Equal(refRepeat, gwRepeat) {
		t.Fatalf("repeat sweep results diverge:\n--- single ---\n%s\n--- cluster ---\n%s", refRepeat, gwRepeat)
	}
	if after := fleetCompletions(t, urls); after != before {
		t.Fatalf("repeat sweep recompiled: fleet completions %d -> %d", before, after)
	}

	// 4. Kill one shard mid-sweep; the sweep must still complete with
	// rows byte-identical to the single daemon's.
	refKill := runSweep(t, refBase, killSweep, nil)
	gwKill := runSweep(t, gwBase, killSweep, func(done int) {
		if done >= 2 && shards[1] != nil {
			shards[1].kill(t)
			shards[1] = nil
		}
	})
	if shards[1] != nil {
		t.Fatal("kill sweep finished before any point did; nothing was killed mid-sweep")
	}
	if !bytes.Equal(refKill, gwKill) {
		t.Fatalf("post-kill sweep results diverge:\n--- single ---\n%s\n--- cluster ---\n%s", refKill, gwKill)
	}

	// The gateway notices the dead shard — through routed traffic
	// failing over or, at the latest, the next health-probe tick.
	var hz struct {
		PeersUp    int `json:"peers_up"`
		PeersTotal int `json:"peers_total"`
	}
	detect := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, gwBase+"/healthz", &hz)
		if hz.PeersTotal == 3 && hz.PeersUp <= 2 {
			break
		}
		if time.Now().After(detect) {
			t.Fatalf("gateway never marked the killed shard down: up %d of %d", hz.PeersUp, hz.PeersTotal)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// proc is one managed daemon process.
type proc struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	exited chan error
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	var stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	p := &proc{cmd: cmd, stderr: &stderr, exited: make(chan error, 1)}
	go func() { p.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // backstop; normal paths killed already
		select {
		case <-p.exited:
		case <-time.After(5 * time.Second):
		}
	})
	return p
}

// kill is SIGKILL — no drain, no goodbye, the failure mode the ring
// exists for.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	<-p.exited
}

// fleetCompletions sums completed compile jobs across the shard
// fleet's /metrics.
func fleetCompletions(t *testing.T, urls []string) (n uint64) {
	t.Helper()
	for _, u := range urls {
		var m struct {
			Queue struct {
				Completed uint64 `json:"completed"`
			} `json:"queue"`
		}
		getJSON(t, u+"/metrics", &m)
		n += m.Queue.Completed
	}
	return n
}

// runSweep creates a sweep, polls until done (invoking onProgress
// with the done-count each poll) and returns the verbatim results
// document.
func runSweep(t *testing.T, base, spec string, onProgress func(done int)) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Sweep struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Done  int    `json:"done"`
		} `json:"sweep"`
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep create %d (error %s)", resp.StatusCode, env.Error)
	}
	id := env.Sweep.ID
	deadline := time.Now().Add(90 * time.Second)
	for {
		env.Sweep.State = ""
		getJSON(t, base+"/v1/sweeps/"+id, &env)
		if onProgress != nil {
			onProgress(env.Sweep.Done)
		}
		if env.Sweep.State == "done" {
			break
		}
		if env.Sweep.State == "failed" {
			t.Fatalf("sweep %s failed", id)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished (state %s, done %d)", id, env.Sweep.State, env.Sweep.Done)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return getRaw(t, base+"/v1/sweeps/"+id+"/results")
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, raw)
	}
	return raw
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// freeAddr reserves an ephemeral localhost port and releases it for a
// daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type smokeJob struct {
	Key       string `json:"key"`
	JobID     string `json:"job_id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	CacheTier string `json:"cache_tier"`
}

func postCompile(t *testing.T, base, body string) smokeJob {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Job   smokeJob        `json:"job"`
		Error json.RawMessage `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compile: status %d (error %s)", resp.StatusCode, env.Error)
	}
	if env.Job.State != "done" {
		t.Fatalf("unexpected terminal state %q", env.Job.State)
	}
	return env.Job
}

// waitHealthy polls /healthz until the daemon answers 200, failing
// fast if the process dies first (exited may be nil).
func waitHealthy(t *testing.T, base string, exited <-chan error) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if exited != nil {
			select {
			case err := <-exited:
				t.Fatalf("daemon exited before becoming healthy: %v", err)
			default:
			}
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
