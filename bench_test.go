// Package repro_test benchmarks regenerate every table and figure of
// the paper (one Benchmark per experiment id in DESIGN.md) and add
// micro-benchmarks for the heavy substrates. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/floorplan"
	"repro/internal/gds"
	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/spice"
	"repro/internal/sram"
	"repro/internal/tech"
	"repro/internal/yield"
)

// --- paper experiments, one bench per table/figure -----------------

var growthOnce sync.Once
var growthFactors map[int]float64

func growth(b *testing.B) map[int]float64 {
	b.Helper()
	growthOnce.Do(func() {
		gf, err := experiments.GrowthFactors()
		if err != nil {
			b.Fatal(err)
		}
		growthFactors = gf
	})
	return growthFactors
}

func BenchmarkFig4Yield(b *testing.B) {
	gf := growth(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []int{0, 4, 8, 16} {
			m := yield.Model{Rows: 1024, Cols: 16, Spares: s, GrowthFactor: gf[s]}
			for n := 0.0; n <= 50; n += 2 {
				if s == 0 {
					_ = m.YieldNoRepair(n)
				} else {
					_ = m.YieldBISR(n)
				}
			}
		}
	}
}

func BenchmarkFig5Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(30, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DieCost(b *testing.B) {
	growth(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3TotalCost(b *testing.B) {
	growth(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLBDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TLBDelay(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Coverage(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Controller(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RepairComparison(10, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonteCarloYield(10, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -------------------------------------

func BenchmarkCompile64kbyte(b *testing.B) {
	p := compiler.Params{
		Words: 4096, BPW: 128, BPC: 8, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel is BenchmarkCompile64kbyte with the
// concurrency knob wide open: same parameters, same output bytes
// (the byte-determinism contract), different wall clock. Compare the
// two in results/BENCH_*.json for the parallel-speedup evidence; on a
// single-core host the two converge (the DAG cannot beat one CPU),
// while the memoized leaf-cell library and bucketed extraction show
// up in both.
func BenchmarkCompileParallel(b *testing.B) {
	p := compiler.Params{
		Words: 4096, BPW: 128, BPC: 8, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileUntraced / BenchmarkCompileTraced measure the span
// overhead contract of internal/obs: run both and compare —
//
//	go test -bench='BenchmarkCompile(Un)?[Tt]raced' -count=5
//
// the traced run records every pipeline stage and kernel span into a
// live *obs.Trace and must stay within ~2% of the untraced baseline
// (the untraced path costs one context lookup per instrumentation
// site; the traced path a few time reads and one short append per
// span, against a compile that runs whole SPICE transients).
func BenchmarkCompileUntraced(b *testing.B) {
	p := smallBenchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.CompileCtx(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileTraced(b *testing.B) {
	p := smallBenchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench")
		ctx := obs.WithTrace(context.Background(), tr)
		if _, err := compiler.CompileCtx(ctx, p); err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("traced compile recorded no spans")
		}
	}
}

// smallBenchParams is a fast-compiling configuration so the traced/
// untraced comparison gets enough iterations to be stable.
func smallBenchParams() compiler.Params {
	return compiler.Params{
		Words: 256, BPW: 8, BPC: 4, Spares: 4,
		BufSize: 1, StrapCells: 32, Process: tech.CDA07,
	}
}

func BenchmarkMarchIFA9(b *testing.B) {
	a := sram.MustNew(sram.Config{Words: 1024, BPW: 8, BPC: 4})
	bg := march.JohnsonBackgrounds(8)
	test := march.IFA9()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !march.Run(a, test, bg, 8).Pass() {
			b.Fatal("march failed on fault-free array")
		}
	}
}

func BenchmarkBISTEngine(b *testing.B) {
	prog, err := bist.Assemble(march.IFA9())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sram.MustNew(sram.Config{Words: 256, BPW: 8, BPC: 4})
		if _, err := bist.NewEngine(prog, a, 8).Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfRepairFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		arr := sram.MustNew(sram.Config{Words: 256, BPW: 8, BPC: 4, SpareRows: 4})
		arr.InjectRandom(3, rng)
		ram := bisr.NewRAM(arr)
		if _, err := bisr.NewController(ram).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	tlb := bisr.NewTLB(16)
	for r := 0; r < 16; r++ {
		if _, err := tlb.Store(r * 3); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Lookup(i % 64)
	}
}

func BenchmarkSpiceInverterTransient(b *testing.B) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := spice.InverterDelays(p, 2e-6, 4e-6, l, 50e-15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPLAEval(b *testing.B) {
	prog, err := bist.Assemble(march.IFA13())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Eval(i%prog.NumStates, uint64(i)&15)
	}
}

func BenchmarkGateLevelRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arr := sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 4})
		if err := arr.Inject(sram.CellAddr{Row: 3, Col: 2}, sram.Fault{Kind: sram.SA1}); err != nil {
			b.Fatal(err)
		}
		if _, err := bisr.RunGateLevelRepair(arr, march.IFA9(), 4_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract6TArray(b *testing.B) {
	lib, err := leafcell.NewLibrary(tech.CDA07, 2)
	if err != nil {
		b.Fatal(err)
	}
	// A 16x16 bit-cell tile.
	tile := geom.NewCell("tile")
	cw, ch := lib.SRAM.Bounds().W(), lib.SRAM.Bounds().H()
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			tile.Place("x", lib.SRAM.Cell, geom.R0, geom.Point{X: c * cw, Y: r * ch})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.Extract(tile)
	}
}

func BenchmarkChannelRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var nets []route.Net
	for i := 0; i < 64; i++ {
		x0 := rng.Intn(100000)
		nets = append(nets, route.Net{
			Name: "n" + string(rune('A'+i%26)) + string(rune('a'+i/26)),
			Terminals: []route.Terminal{
				{X: x0, Top: true}, {X: x0 + 1000 + rng.Intn(40000), Top: false},
			},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(nets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpareAllocation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	f := bisr.NewFaultBitmap(64, 64)
	for i := 0; i < 40; i++ {
		_ = f.Mark(rng.Intn(64), rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bisr.AllocateSpares(f, 8, 8)
	}
}

func BenchmarkGDSExport(b *testing.B) {
	d, err := compiler.Compile(compiler.Params{
		Words: 1024, BPW: 8, BPC: 4, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gds.Write(&buf, d.Top, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPLAMinimize(b *testing.B) {
	p, err := bist.Assemble(march.IFA13())
	if err != nil {
		b.Fatal(err)
	}
	gray := p.Reencode(bist.GrayMapping(p.StateBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gray.Minimize()
	}
}

func BenchmarkTransparentIFA9(b *testing.B) {
	a := sram.MustNew(sram.Config{Words: 256, BPW: 8, BPC: 4})
	for i := 0; i < a.Words(); i++ {
		a.Write(i, uint64(i)&0xFF)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := march.RunTransparent(a, march.IFA9(), 8)
		if !res.Pass() || !res.Restored {
			b.Fatal("transparent run failed")
		}
	}
}

func BenchmarkFloorplan16(b *testing.B) {
	var macros []floorplan.Macro
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 16; i++ {
		c := geom.NewCell(string(rune('a' + i)))
		c.Abut = geom.R(0, 0, 200+rng.Intn(2000), 200+rng.Intn(2000))
		macros = append(macros, floorplan.Macro{Name: c.Name, Cell: c})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floorplan.Place(tech.CDA07, macros, nil); err != nil {
			b.Fatal(err)
		}
	}
}
