# BISRAMGEN build/test entry points.
#
#   make check — the default pre-merge gate: vet (gofmt included),
#                build, race-enabled tests, and the serve-smoke +
#                sweep-smoke + chaos-smoke + cluster-smoke +
#                obs-fleet-smoke end-to-end daemon checks.
#   make ci    — everything the tree must pass before merging: check
#                plus a short fuzz smoke pass on each parser and the
#                adversarial-input fault campaign.

GO       ?= go
FUZZTIME ?= 5s
# BENCH_OUT names the checked-in benchmark evidence file; bump the
# numeral with the PR that re-measures (schema in EXPERIMENTS.md).
BENCH_OUT  ?= results/BENCH_5.json
BENCHCOUNT ?= 3

.PHONY: all check build vet test race serve-smoke obs-smoke sweep-smoke chaos-smoke cluster-smoke obs-fleet-smoke fuzz-smoke campaign serve ci bench bench-smoke

all: check

check: vet build race serve-smoke sweep-smoke chaos-smoke cluster-smoke obs-fleet-smoke bench-smoke

build:
	$(GO) build ./...

# vet also gates on gofmt: any file needing reformatting fails the
# target and is listed.
vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need reformatting:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end daemon check: builds the bisramgend binary, starts it on
# a free port, POSTs the same compile twice and asserts the second is
# a cache hit (visible in /metrics and >= 10x faster), then SIGTERMs
# the daemon and requires a clean drain with exit 0.
serve-smoke:
	$(GO) test -race -run TestServeSmoke -count=1 ./cmd/bisramgend/

# End-to-end observability check: boots the daemon with -pprof and a
# 1ns slow-compile threshold, POSTs one compile, asserts the
# Prometheus exposition parses with nonzero
# compile_stage_duration_seconds buckets, fetches the job's Chrome
# trace JSON from /debug/trace/{id}, and requires the slow-compile
# span tree on stderr.
obs-smoke:
	$(GO) test -race -run TestObsSmoke -count=1 -v ./cmd/bisramgend/

# End-to-end persistence + batch check: a daemon over -store-dir
# compiles, drains, restarts and serves the same request from the disk
# store (cache_tier "hit-disk", >= 10x faster, counters say warm); a
# truncated object is quarantined and recompiled, never served. Then
# the sweep API: a spares x defects sweep expands/dedups/completes, an
# identical repeat sweep runs zero new compiles, and the experiments
# growth-factor tables built from service-fetched factors are
# byte-identical to locally compiled ones.
sweep-smoke:
	$(GO) test -race -run 'TestStoreRestartSmoke|TestSweepSmoke' -count=1 ./cmd/bisramgend/

# End-to-end resilience drill, three staged failures against the real
# binary: (1) kill -9 a daemon mid-sweep and require the restart to
# resume the sweep from its write-ahead journal with byte-identical
# rows and zero recompiles of finished points; (2) inject a store.read
# bit-flip via -chaos-spec and require quarantine + recompile, never a
# corrupt response; (3) stall a one-worker daemon and require the
# overload burst to shed with 429 + Retry-After while the retrying
# client completes.
chaos-smoke:
	$(GO) test -race -run TestChaosSmoke -count=1 ./cmd/bisramgend/

# End-to-end federation drill: a bisramgate gateway in front of three
# federated bisramgend shards next to one standalone reference daemon.
# Requires (1) a compile through the cluster returns the same key and
# byte-identical artifact as the single daemon; (2) fresh and repeat
# sweeps through the cluster return results documents byte-identical
# to the single daemon's, with the repeat running zero compiles on any
# shard; (3) kill -9 of one shard mid-sweep still completes the sweep
# via ring-successor failover with byte-identical rows, and the
# gateway marks the dead shard down.
cluster-smoke:
	$(GO) test -race -run TestClusterSmoke -count=1 ./cmd/bisramgate/

# Fleet observability drill: a gateway over two federated shards must
# (1) merge a routed compile's spans from both processes into one
# Chrome trace with the shard's compile spans parented under the
# gateway's proxy.route span; (2) deliver every sweep point exactly
# once over the SSE progress stream with a terminal summary matching
# the results document; (3) serve /metrics?scope=fleet with counters
# equal to the sum of the shard scrapes, surviving a kill -9 of one
# shard as a counted scrape error rather than a failure.
obs-fleet-smoke:
	$(GO) test -race -run TestObsFleetSmoke -count=1 ./cmd/bisramgate/

# Full benchmark sweep: every Fig/Table experiment benchmark plus the
# substrate micro-benchmarks, -count=$(BENCHCOUNT) with -benchmem, the
# averaged results rendered to $(BENCH_OUT) by cmd/benchjson (schema
# documented in EXPERIMENTS.md). Compare BenchmarkCompile64kbyte vs
# BenchmarkCompileParallel for the parallel-compile speedup, and
# either against an older results/BENCH_*.json for the memoization +
# extraction wins.
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchmem -count=$(BENCHCOUNT) . | tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# One-iteration pass over the compile benchmarks: a fast gate that the
# benchmark harness itself still compiles and runs (wired into
# `make check`; it measures nothing).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile(64kbyte|Parallel|Untraced|Traced)' -benchtime=1x -count=1 .

# Run the compile daemon locally with the documented defaults.
serve:
	$(GO) run ./cmd/bisramgend

# Brief coverage-guided pass over every fuzz target. Seed corpora are
# checked in under each package's testdata/fuzz/; anything the fuzzer
# minimises lands there too and should be committed.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseDeck -fuzztime=$(FUZZTIME) ./internal/tech/
	$(GO) test -run='^$$' -fuzz=FuzzMarchNotation -fuzztime=$(FUZZTIME) ./internal/march/
	$(GO) test -run='^$$' -fuzz=FuzzPLAPlanes -fuzztime=$(FUZZTIME) ./internal/bist/
	$(GO) test -run='^$$' -fuzz=FuzzParseRequest -fuzztime=$(FUZZTIME) ./internal/canon/
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/sweep/

# Adversarial-input campaign against the full compile pipeline: exits
# non-zero on any panic, hang or untyped error.
campaign:
	$(GO) run ./cmd/bisrsim faultcampaign

ci: check fuzz-smoke campaign
