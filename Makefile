# BISRAMGEN build/test entry points.
#
#   make ci   — everything the tree must pass before merging: vet,
#               build, race-enabled tests, a short fuzz smoke pass on
#               each parser, and the adversarial-input fault campaign.

GO       ?= go
FUZZTIME ?= 5s

.PHONY: all build vet test race fuzz-smoke campaign ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Brief coverage-guided pass over every fuzz target. Seed corpora are
# checked in under each package's testdata/fuzz/; anything the fuzzer
# minimises lands there too and should be committed.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseDeck -fuzztime=$(FUZZTIME) ./internal/tech/
	$(GO) test -run='^$$' -fuzz=FuzzMarchNotation -fuzztime=$(FUZZTIME) ./internal/march/
	$(GO) test -run='^$$' -fuzz=FuzzPLAPlanes -fuzztime=$(FUZZTIME) ./internal/bist/

# Adversarial-input campaign against the full compile pipeline: exits
# non-zero on any panic, hang or untyped error.
campaign:
	$(GO) run ./cmd/bisrsim faultcampaign

ci: vet build race fuzz-smoke campaign
