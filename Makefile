# BISRAMGEN build/test entry points.
#
#   make check — the default pre-merge gate: vet (gofmt included),
#                build, race-enabled tests, the serve-smoke +
#                sweep-smoke + chaos-smoke + cluster-smoke +
#                obs-fleet-smoke + mc-smoke end-to-end daemon checks,
#                and the bench-delta soft benchmark-regression gate.
#   make ci    — everything the tree must pass before merging: check
#                plus a short fuzz smoke pass on each parser and the
#                adversarial-input fault campaign.

GO       ?= go
FUZZTIME ?= 5s
# BENCH_OUT names the checked-in benchmark evidence file; bump the
# numeral with the PR that re-measures (schema in EXPERIMENTS.md).
BENCH_OUT  ?= results/BENCH_10.json
BENCHCOUNT ?= 3
# NPROC drives the -cpu pass over the parallelism-sensitive
# benchmarks; on a single-core box the pass degenerates to the serial
# measurement and merges with the main run.
NPROC ?= $(shell nproc 2>/dev/null || echo 2)
# BENCH_PKGS is every package whose benchmarks land in BENCH_OUT.
BENCH_PKGS = . ./internal/mcyield/
# BENCH_CPU_PATTERN selects the benchmarks whose scaling the -cpu pass
# measures; their highest-proc rows are what benchjson keeps.
BENCH_CPU_PATTERN = 'BenchmarkCompileParallel|BenchmarkMCYieldParallel'
# BENCH_BASELINE is the newest checked-in evidence file other than
# BENCH_OUT itself — what `make bench` and the bench-delta gate diff
# fresh numbers against. Empty on a tree with no prior evidence, in
# which case the -baseline flag is simply omitted.
BENCH_BASELINE ?= $(shell ls results/BENCH_*.json 2>/dev/null | grep -vx '$(BENCH_OUT)' | sort -V | tail -1)

.PHONY: all check build vet test race serve-smoke obs-smoke sweep-smoke chaos-smoke cluster-smoke obs-fleet-smoke mc-smoke fuzz-smoke campaign serve ci bench bench-smoke bench-delta

all: check

check: vet build race serve-smoke sweep-smoke chaos-smoke cluster-smoke obs-fleet-smoke mc-smoke bench-smoke bench-delta

build:
	$(GO) build ./...

# vet also gates on gofmt: any file needing reformatting fails the
# target and is listed.
vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need reformatting:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end daemon check: builds the bisramgend binary, starts it on
# a free port, POSTs the same compile twice and asserts the second is
# a cache hit (visible in /metrics and >= 10x faster), then SIGTERMs
# the daemon and requires a clean drain with exit 0.
serve-smoke:
	$(GO) test -race -run TestServeSmoke -count=1 ./cmd/bisramgend/

# End-to-end observability check: boots the daemon with -pprof and a
# 1ns slow-compile threshold, POSTs one compile, asserts the
# Prometheus exposition parses with nonzero
# compile_stage_duration_seconds buckets, fetches the job's Chrome
# trace JSON from /debug/trace/{id}, and requires the slow-compile
# span tree on stderr.
obs-smoke:
	$(GO) test -race -run TestObsSmoke -count=1 -v ./cmd/bisramgend/

# End-to-end persistence + batch check: a daemon over -store-dir
# compiles, drains, restarts and serves the same request from the disk
# store (cache_tier "hit-disk", >= 10x faster, counters say warm); a
# truncated object is quarantined and recompiled, never served. Then
# the sweep API: a spares x defects sweep expands/dedups/completes, an
# identical repeat sweep runs zero new compiles, and the experiments
# growth-factor tables built from service-fetched factors are
# byte-identical to locally compiled ones.
sweep-smoke:
	$(GO) test -race -run 'TestStoreRestartSmoke|TestSweepSmoke' -count=1 ./cmd/bisramgend/

# End-to-end resilience drill, three staged failures against the real
# binary: (1) kill -9 a daemon mid-sweep and require the restart to
# resume the sweep from its write-ahead journal with byte-identical
# rows and zero recompiles of finished points; (2) inject a store.read
# bit-flip via -chaos-spec and require quarantine + recompile, never a
# corrupt response; (3) stall a one-worker daemon and require the
# overload burst to shed with 429 + Retry-After while the retrying
# client completes. Also runs the sim.batch chaos point in-process:
# a fault injected into the bit-parallel evaluator's lane packing
# must be caught by the scalar differential, proving the batch
# coverage path is actually cross-checked.
chaos-smoke:
	$(GO) test -race -run TestChaosSmoke -count=1 ./cmd/bisramgend/
	$(GO) test -race -run TestBatchChaos -count=1 ./internal/experiments/

# End-to-end federation drill: a bisramgate gateway in front of three
# federated bisramgend shards next to one standalone reference daemon.
# Requires (1) a compile through the cluster returns the same key and
# byte-identical artifact as the single daemon; (2) fresh and repeat
# sweeps through the cluster return results documents byte-identical
# to the single daemon's, with the repeat running zero compiles on any
# shard; (3) kill -9 of one shard mid-sweep still completes the sweep
# via ring-successor failover with byte-identical rows, and the
# gateway marks the dead shard down.
cluster-smoke:
	$(GO) test -race -run TestClusterSmoke -count=1 ./cmd/bisramgate/

# Fleet observability drill: a gateway over two federated shards must
# (1) merge a routed compile's spans from both processes into one
# Chrome trace with the shard's compile spans parented under the
# gateway's proxy.route span; (2) deliver every sweep point exactly
# once over the SSE progress stream with a terminal summary matching
# the results document; (3) serve /metrics?scope=fleet with counters
# equal to the sum of the shard scrapes, surviving a kill -9 of one
# shard as a counted scrape error rather than a failure.
obs-fleet-smoke:
	$(GO) test -race -run TestObsFleetSmoke -count=1 ./cmd/bisramgate/

# Statistical-yield drill against the real binaries: (1) a seeded
# Monte-Carlo sweep through a daemon returns byte-identical results
# documents when submitted twice; (2) the same sweep through a
# bisramgate gateway over federated shards matches the daemon's
# document byte for byte; (3) kill -9 of the daemon mid-MC-sweep
# resumes from the journal and completes under the original sweep ID.
mc-smoke:
	$(GO) test -race -run TestMCSmoke -count=1 ./cmd/bisramgate/

# Full benchmark sweep: every Fig/Table experiment benchmark plus the
# substrate micro-benchmarks and the mcyield engine,
# -count=$(BENCHCOUNT) with -benchmem, then a second -cpu $(NPROC)
# pass over the parallelism-sensitive benchmarks so their scaling is
# measured at real core counts (benchjson records the proc count per
# benchmark and keeps the highest). The averaged results render to
# $(BENCH_OUT) via cmd/benchjson (schema documented in
# EXPERIMENTS.md). When $(BENCH_BASELINE) exists the run also prints
# the per-benchmark ns/op and allocs/op ratio table against it —
# skipping pairs whose proc counts differ — and fails on any >2x
# regression, the authoritative form of the bench-delta gate below.
bench:
	@mkdir -p results
	( $(GO) test -run '^$$' -bench . -benchmem -count=$(BENCHCOUNT) $(BENCH_PKGS) ; \
	  $(GO) test -run '^$$' -bench $(BENCH_CPU_PATTERN) -benchmem -count=$(BENCHCOUNT) -cpu $(NPROC) $(BENCH_PKGS) ) \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# One-iteration pass over the compile benchmarks: a fast gate that the
# benchmark harness itself still compiles and runs (wired into
# `make check`; it measures nothing).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkCompile(64kbyte|Parallel|Untraced|Traced)' -benchtime=1x -count=1 .
	$(GO) test -run '^$$' -bench 'BenchmarkMCYield$$' -benchtime=1x -count=1 ./internal/mcyield/

# Soft regression gate wired into `make check`: one iteration of every
# benchmark, diffed by cmd/benchjson -baseline against the newest
# checked-in results/BENCH_*.json. Single-iteration numbers are far
# too noisy to block a merge, so -tolerate prints any >2x ns/op or
# allocs/op regression as a warning and always exits 0; `make bench`
# runs the same comparison at full -count and does fail.
bench-delta:
	@if [ -z "$(BENCH_BASELINE)" ]; then echo "bench-delta: no checked-in results/BENCH_*.json baseline; skipping"; exit 0; fi
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem -count=1 $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -tolerate -o /dev/null

# Run the compile daemon locally with the documented defaults.
serve:
	$(GO) run ./cmd/bisramgend

# Brief coverage-guided pass over every fuzz target. Seed corpora are
# checked in under each package's testdata/fuzz/; anything the fuzzer
# minimises lands there too and should be committed.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseDeck -fuzztime=$(FUZZTIME) ./internal/tech/
	$(GO) test -run='^$$' -fuzz=FuzzMarchNotation -fuzztime=$(FUZZTIME) ./internal/march/
	$(GO) test -run='^$$' -fuzz=FuzzPLAPlanes -fuzztime=$(FUZZTIME) ./internal/bist/
	$(GO) test -run='^$$' -fuzz=FuzzParseRequest -fuzztime=$(FUZZTIME) ./internal/canon/
	$(GO) test -run='^$$' -fuzz=FuzzMCParams -fuzztime=$(FUZZTIME) ./internal/canon/
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/sweep/
	$(GO) test -run='^$$' -fuzz=FuzzBatchEvaluator -fuzztime=$(FUZZTIME) ./internal/sram/

# Adversarial-input campaign against the full compile pipeline: exits
# non-zero on any panic, hang or untyped error.
campaign:
	$(GO) run ./cmd/bisrsim faultcampaign

ci: check fuzz-smoke campaign
